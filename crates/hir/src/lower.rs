//! AST → HIR lowering.

use std::collections::{HashMap, HashSet};
use std::fmt;

use frontc::{
    AssignOp, BinOp, Expr, ForLoop, FunctionDef, LValue, Program, SourcePragma, Stmt, UnOp,
};
use pragma::{ArrayPartition, LoopId, PragmaConfig, Unroll};

use crate::ir::*;

/// Lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Function being lowered.
    pub function: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering {:?}: {}", self.function, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a checked program to HIR.
///
/// # Errors
///
/// Returns a [`LowerError`] for constructs outside the supported subset
/// (currently: loops nested under `if`).
pub fn lower(program: &Program) -> Result<Module, LowerError> {
    let sp = obs::span("hir_lower");
    sp.attr("functions", program.functions.len());
    let mut functions = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        functions.push(lower_function(f)?);
    }
    Ok(Module { functions })
}

/// Extracts the pragma configuration written in the source of `func`.
///
/// This is what [`lower`] stores in [`Function::source_pragmas`]; exposed
/// separately for tooling that only needs the configuration.
pub fn source_config(func: &FunctionDef) -> PragmaConfig {
    let mut cfg = PragmaConfig::new();
    apply_function_pragmas(func, &mut cfg);
    fn walk(stmts: &[Stmt], parent: &LoopId, cfg: &mut PragmaConfig) {
        let mut idx = 0u16;
        for s in stmts {
            match s {
                Stmt::For(l) => {
                    let id = parent.child(idx);
                    idx += 1;
                    apply_loop_pragmas(l, &id, cfg);
                    walk(&l.body, &id, cfg);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    // loops under if are rejected later; nothing to collect
                    let _ = (then_body, else_body);
                }
                _ => {}
            }
        }
    }
    walk(&func.body, &LoopId::root(), &mut cfg);
    cfg
}

fn apply_function_pragmas(func: &FunctionDef, cfg: &mut PragmaConfig) {
    for p in &func.pragmas {
        if let SourcePragma::ArrayPartition {
            variable,
            kind,
            factor,
            dim,
        } = p
        {
            let rank = func
                .params
                .iter()
                .find(|q| &q.name == variable)
                .map(|q| q.dims.len())
                .unwrap_or(1);
            let dims: Vec<u32> = if *dim == 0 {
                (1..=rank as u32).collect()
            } else {
                vec![*dim]
            };
            for d in dims {
                cfg.set_partition(
                    variable.clone(),
                    d,
                    ArrayPartition {
                        kind: *kind,
                        factor: *factor,
                    },
                );
            }
        }
    }
}

fn apply_loop_pragmas(l: &ForLoop, id: &LoopId, cfg: &mut PragmaConfig) {
    for p in &l.pragmas {
        match p {
            SourcePragma::Pipeline { .. } => cfg.set_pipeline(id.clone(), true),
            SourcePragma::Unroll { factor } => {
                let u = match factor {
                    None => Unroll::Full,
                    Some(1) => Unroll::Off,
                    Some(f) => Unroll::Factor(*f),
                };
                cfg.set_unroll(id.clone(), u);
            }
            SourcePragma::LoopFlatten => cfg.set_flatten(id.clone(), true),
            SourcePragma::ArrayPartition { .. } => {
                // sema guarantees these only appear at function scope
            }
        }
    }
}

#[derive(Clone)]
enum Binding {
    Scalar(Operand, ScalarType),
    Array(usize),
    IndVar(LoopId),
}

struct Lowerer<'a> {
    func: &'a FunctionDef,
    arrays: Vec<ArrayInfo>,
    ops: Vec<Op>,
    scopes: Vec<HashMap<String, Binding>>,
    loop_stack: Vec<LoopId>,
    pred: Option<OpId>,
    /// Ops below this index are already placed in some block (or are phis,
    /// which live in [`HirLoop::phis`] instead of a block).
    watermark: usize,
}

impl<'a> Lowerer<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError {
            function: self.func.name.clone(),
            message: message.into(),
        })
    }

    fn cur_loop(&self) -> LoopId {
        self.loop_stack.last().cloned().unwrap_or_else(LoopId::root)
    }

    fn push_op(&mut self, kind: OpKind, ty: ScalarType, operands: Vec<Operand>) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            kind,
            ty,
            operands,
            ctrl: self.pred,
            in_loop: self.cur_loop(),
        });
        id
    }

    /// Places every op created since the last flush into `out`, in arena
    /// order.
    fn flush(&mut self, out: &mut Block) {
        for idx in self.watermark..self.ops.len() {
            out.items.push(Item::Op(OpId(idx)));
        }
        self.watermark = self.ops.len();
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }

    fn set_scalar(&mut self, name: &str, value: Operand, ty: ScalarType) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(b) = scope.get_mut(name) {
                *b = Binding::Scalar(value, ty);
                return;
            }
        }
        // new binding in the current scope
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_string(), Binding::Scalar(value, ty));
    }

    fn declare(&mut self, name: &str, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_string(), binding);
    }

    // ------------------------------------------------------------- exprs

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, ScalarType), LowerError> {
        match e {
            Expr::IntLit(v) => Ok((Operand::Const(*v as f64), ScalarType::Int)),
            Expr::FloatLit(v) => Ok((Operand::Const(*v), ScalarType::Float)),
            Expr::Var(name) => match self.lookup(name) {
                Some(Binding::Scalar(op, ty)) => Ok((op, ty)),
                Some(Binding::IndVar(id)) => Ok((Operand::IndVar(id), ScalarType::Int)),
                Some(Binding::Array(_)) => self.error(format!("array {name:?} used as scalar")),
                None => self.error(format!("unknown variable {name:?}")),
            },
            Expr::ArrayElem { array, indices } => {
                let (info_idx, elem) = self.array_ref(array)?;
                let (access, dyn_ops) = self.lower_access(array, info_idx, indices)?;
                let id = self.push_op(
                    OpKind::Load {
                        array: array.clone(),
                        access,
                    },
                    elem,
                    dyn_ops,
                );
                Ok((Operand::Value(id), elem))
            }
            Expr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => {
                    let (v, ty) = self.lower_expr(expr)?;
                    if let Operand::Const(c) = v {
                        return Ok((Operand::Const(-c), ty));
                    }
                    let kind = if ty == ScalarType::Float {
                        OpKind::FSub
                    } else {
                        OpKind::Sub
                    };
                    let id = self.push_op(kind, ty, vec![Operand::Const(0.0), v]);
                    Ok((Operand::Value(id), ty))
                }
                UnOp::Not => {
                    let (v, _) = self.lower_expr(expr)?;
                    let id = self.push_op(OpKind::Not, ScalarType::Int, vec![v]);
                    Ok((Operand::Value(id), ScalarType::Int))
                }
            },
            Expr::Ternary {
                cond,
                then_value,
                else_value,
            } => {
                let (cv, _) = self.lower_expr(cond)?;
                let (tv, tt) = self.lower_expr(then_value)?;
                let (ev, et) = self.lower_expr(else_value)?;
                let ty = if tt == ScalarType::Float || et == ScalarType::Float {
                    ScalarType::Float
                } else {
                    ScalarType::Int
                };
                let tv = self.coerce(tv, tt, ty);
                let ev = self.coerce(ev, et, ty);
                let id = self.push_op(OpKind::Select, ty, vec![cv, tv, ev]);
                Ok((Operand::Value(id), ty))
            }
            Expr::Call { name, args } => {
                let kind = match name.as_str() {
                    "sqrtf" => OpKind::Sqrt,
                    "expf" => OpKind::Exp,
                    "fabsf" => OpKind::Abs,
                    "fmaxf" => OpKind::Max,
                    "fminf" => OpKind::Min,
                    other => return self.error(format!("unknown intrinsic {other:?}")),
                };
                let mut operands = Vec::with_capacity(args.len());
                for a in args {
                    let (v, ty) = self.lower_expr(a)?;
                    operands.push(self.coerce(v, ty, ScalarType::Float));
                }
                let id = self.push_op(kind, ScalarType::Float, operands);
                Ok((Operand::Value(id), ScalarType::Float))
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(Operand, ScalarType), LowerError> {
        let (lv, lt) = self.lower_expr(lhs)?;
        let (rv, rt) = self.lower_expr(rhs)?;

        // constant folding for arithmetic on two constants
        if let (Operand::Const(a), Operand::Const(b)) = (&lv, &rv) {
            let const_float = lt == ScalarType::Float || rt == ScalarType::Float;
            if let Some(folded) = fold(op, *a, *b, const_float) {
                let ty = if const_float {
                    ScalarType::Float
                } else {
                    ScalarType::Int
                };
                let ty = if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    ScalarType::Int
                } else {
                    ty
                };
                return Ok((Operand::Const(folded), ty));
            }
        }

        let float = lt == ScalarType::Float || rt == ScalarType::Float;
        let work_ty = if float {
            ScalarType::Float
        } else {
            ScalarType::Int
        };
        let lv = self.coerce(lv, lt, work_ty);
        let rv = self.coerce(rv, rt, work_ty);

        let (kind, result_ty) = match op {
            BinOp::Add if float => (OpKind::FAdd, ScalarType::Float),
            BinOp::Add => (OpKind::Add, ScalarType::Int),
            BinOp::Sub if float => (OpKind::FSub, ScalarType::Float),
            BinOp::Sub => (OpKind::Sub, ScalarType::Int),
            BinOp::Mul if float => (OpKind::FMul, ScalarType::Float),
            BinOp::Mul => (OpKind::Mul, ScalarType::Int),
            BinOp::Div if float => (OpKind::FDiv, ScalarType::Float),
            BinOp::Div => (OpKind::Div, ScalarType::Int),
            BinOp::Rem => (OpKind::Rem, ScalarType::Int),
            BinOp::And => (OpKind::And, ScalarType::Int),
            BinOp::Or => (OpKind::Or, ScalarType::Int),
            cmp => {
                let pred = match cmp {
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    _ => unreachable!("arithmetic handled above"),
                };
                let kind = if float {
                    OpKind::FCmp(pred)
                } else {
                    OpKind::ICmp(pred)
                };
                (kind, ScalarType::Int)
            }
        };
        let id = self.push_op(kind, result_ty, vec![lv, rv]);
        Ok((Operand::Value(id), result_ty))
    }

    fn coerce(&mut self, v: Operand, from: ScalarType, to: ScalarType) -> Operand {
        if from == to {
            return v;
        }
        if let Operand::Const(c) = v {
            // Constants coerce at compile time with the runtime Cast
            // semantics: float→int truncates toward zero (`int x = 2.5;`
            // must see 2 in the dataflow, matching the interpreters).
            return Operand::Const(if to == ScalarType::Int { c.trunc() } else { c });
        }
        Operand::Value(self.push_op(OpKind::Cast, to, vec![v]))
    }

    fn array_ref(&self, name: &str) -> Result<(usize, ScalarType), LowerError> {
        match self.lookup(name) {
            Some(Binding::Array(i)) => Ok((i, self.arrays[i].elem)),
            _ => self.error(format!("{name:?} is not an array")),
        }
    }

    /// Builds the access pattern for an array reference. Affine dimensions
    /// produce no ops; non-affine dimensions are lowered and returned as
    /// operands (making the whole access `Dynamic`).
    fn lower_access(
        &mut self,
        _array: &str,
        _info_idx: usize,
        indices: &[Expr],
    ) -> Result<(AccessPattern, Vec<Operand>), LowerError> {
        let mut affine = Vec::with_capacity(indices.len());
        let mut all_affine = true;
        for idx in indices {
            match self.affine_of(idx) {
                Some(a) => affine.push(a),
                None => {
                    all_affine = false;
                    break;
                }
            }
        }
        if all_affine {
            return Ok((AccessPattern::Affine(affine), Vec::new()));
        }
        // dynamic: lower every index expression as data operands
        let mut operands = Vec::with_capacity(indices.len());
        for idx in indices {
            let (v, ty) = self.lower_expr(idx)?;
            operands.push(self.coerce(v, ty, ScalarType::Int));
        }
        Ok((
            AccessPattern::Dynamic {
                rank: indices.len(),
            },
            operands,
        ))
    }

    /// Tries to express `e` as an affine function of induction variables.
    fn affine_of(&self, e: &Expr) -> Option<AffineIndex> {
        match e {
            Expr::IntLit(v) => Some(AffineIndex::constant(*v)),
            Expr::Var(name) => match self.lookup(name)? {
                Binding::IndVar(id) => Some(AffineIndex::var(id)),
                Binding::Scalar(Operand::Const(c), ScalarType::Int) => {
                    Some(AffineIndex::constant(c as i64))
                }
                _ => None,
            },
            Expr::Binary { op, lhs, rhs } => {
                let a = self.affine_of(lhs)?;
                let b = self.affine_of(rhs)?;
                match op {
                    BinOp::Add => Some(affine_combine(a, b, 1)),
                    BinOp::Sub => Some(affine_combine(a, b, -1)),
                    BinOp::Mul => {
                        // one side must be constant
                        if a.terms.is_empty() {
                            Some(affine_scale(b, a.constant))
                        } else if b.terms.is_empty() {
                            Some(affine_scale(a, b.constant))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => self.affine_of(expr).map(|a| affine_scale(a, -1)),
            _ => None,
        }
    }

    // ------------------------------------------------------------- stmts

    fn lower_block(&mut self, stmts: &[Stmt], out: &mut Block) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        let result = self.lower_block_inner(stmts, out);
        self.scopes.pop();
        result
    }

    fn lower_block_inner(&mut self, stmts: &[Stmt], out: &mut Block) -> Result<(), LowerError> {
        let mut loop_counter: u16 = self.count_existing_loops(out);
        for stmt in stmts {
            match stmt {
                Stmt::Decl { name, ty, init } => {
                    let sty = ScalarType::from(*ty);
                    let value = match init {
                        Some(e) => {
                            let (v, t) = self.lower_expr(e)?;
                            let v = self.coerce(v, t, sty);
                            self.flush(out);
                            v
                        }
                        None => Operand::Const(0.0),
                    };
                    self.declare(name, Binding::Scalar(value, sty));
                }
                Stmt::Assign { target, op, value } => {
                    self.lower_assign(target, *op, value)?;
                    self.flush(out);
                }
                Stmt::For(l) => {
                    let parent = self.cur_loop();
                    let id = parent.child(loop_counter);
                    loop_counter += 1;
                    self.flush(out);
                    let hl = self.lower_loop(l, id)?;
                    out.items.push(Item::Loop(hl));
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.lower_if(cond, then_body, else_body, out)?;
                }
                Stmt::Return(e) => {
                    if let Some(e) = e {
                        let (v, _) = self.lower_expr(e)?;
                        let _ = v;
                        self.flush(out);
                    }
                }
            }
        }
        Ok(())
    }

    fn count_existing_loops(&self, out: &Block) -> u16 {
        out.items
            .iter()
            .filter(|i| matches!(i, Item::Loop(_)))
            .count() as u16
    }

    fn lower_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), LowerError> {
        match target {
            LValue::Var(name) => {
                let (rv, rt) = self.lower_expr(value)?;
                let (final_v, final_t) = if op == AssignOp::Set {
                    (rv, rt)
                } else {
                    let (cur, ct) = match self.lookup(name) {
                        Some(Binding::Scalar(v, t)) => (v, t),
                        _ => return self.error(format!("unknown scalar {name:?}")),
                    };
                    self.apply_compound(op, cur, ct, rv, rt)?
                };
                self.set_scalar(name, final_v, final_t);
                Ok(())
            }
            LValue::ArrayElem { array, indices } => {
                let (info_idx, elem) = self.array_ref(array)?;
                let (rv, rt) = self.lower_expr(value)?;
                let (stored, _) = if op == AssignOp::Set {
                    (self.coerce(rv, rt, elem), elem)
                } else {
                    // compound: load current element first
                    let (access, dyn_ops) = self.lower_access(array, info_idx, indices)?;
                    let load = self.push_op(
                        OpKind::Load {
                            array: array.clone(),
                            access,
                        },
                        elem,
                        dyn_ops,
                    );
                    let (v, t) = self.apply_compound(op, Operand::Value(load), elem, rv, rt)?;
                    (self.coerce(v, t, elem), elem)
                };
                let (access, mut operands) = self.lower_access(array, info_idx, indices)?;
                operands.insert(0, stored);
                self.push_op(
                    OpKind::Store {
                        array: array.clone(),
                        access,
                    },
                    elem,
                    operands,
                );
                Ok(())
            }
        }
    }

    fn apply_compound(
        &mut self,
        op: AssignOp,
        cur: Operand,
        ct: ScalarType,
        rv: Operand,
        rt: ScalarType,
    ) -> Result<(Operand, ScalarType), LowerError> {
        let float = ct == ScalarType::Float || rt == ScalarType::Float;
        let ty = if float {
            ScalarType::Float
        } else {
            ScalarType::Int
        };
        let a = self.coerce(cur, ct, ty);
        let b = self.coerce(rv, rt, ty);
        let kind = match (op, float) {
            (AssignOp::Add, true) => OpKind::FAdd,
            (AssignOp::Add, false) => OpKind::Add,
            (AssignOp::Sub, true) => OpKind::FSub,
            (AssignOp::Sub, false) => OpKind::Sub,
            (AssignOp::Mul, true) => OpKind::FMul,
            (AssignOp::Mul, false) => OpKind::Mul,
            (AssignOp::Div, true) => OpKind::FDiv,
            (AssignOp::Div, false) => OpKind::Div,
            (AssignOp::Set, _) => unreachable!("Set handled by caller"),
        };
        let id = self.push_op(kind, ty, vec![a, b]);
        Ok((Operand::Value(id), ty))
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
        out: &mut Block,
    ) -> Result<(), LowerError> {
        if contains_loop(then_body) || contains_loop(else_body) {
            return self.error("loops nested under `if` are not supported");
        }
        let (cv, _) = self.lower_expr(cond)?;
        let cond_id = match cv {
            Operand::Value(id) => id,
            other => {
                // materialize constant/indvar conditions for ctrl edges
                self.push_op(
                    OpKind::ICmp(CmpOp::Ne),
                    ScalarType::Int,
                    vec![other, Operand::Const(0.0)],
                )
            }
        };

        let snapshot = self.scalar_snapshot();
        let outer_pred = self.pred;
        let combined = match outer_pred {
            Some(p) => self.push_op(
                OpKind::And,
                ScalarType::Int,
                vec![Operand::Value(p), Operand::Value(cond_id)],
            ),
            None => cond_id,
        };
        self.flush(out);

        self.pred = Some(combined);
        self.lower_block(then_body, out)?;
        let then_vals = self.scalar_snapshot();
        self.restore_scalars(&snapshot);

        if !else_body.is_empty() {
            // else ops run under the *negated* condition; without this,
            // stores in both branches would execute whenever the condition
            // holds and the else store would clobber the then store
            let not_id = self.push_op(
                OpKind::ICmp(CmpOp::Eq),
                ScalarType::Int,
                vec![Operand::Value(cond_id), Operand::Const(0.0)],
            );
            self.pred = Some(match outer_pred {
                Some(p) => self.push_op(
                    OpKind::And,
                    ScalarType::Int,
                    vec![Operand::Value(p), Operand::Value(not_id)],
                ),
                None => not_id,
            });
        }
        self.lower_block(else_body, out)?;
        let else_vals = self.scalar_snapshot();
        self.restore_scalars(&snapshot);
        self.pred = outer_pred;

        // merge scalars assigned in either branch with selects
        let mut names: Vec<&String> = then_vals
            .keys()
            .chain(else_vals.keys())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        names.sort();
        for name in names {
            let base = snapshot.get(name);
            let tv = then_vals.get(name).or(base);
            let ev = else_vals.get(name).or(base);
            let (Some((tv, tt)), Some((ev, _)), Some((bv, bt))) = (tv, ev, base) else {
                continue; // variable local to a branch
            };
            if tv == bv && ev == bv {
                continue; // unchanged
            }
            let id = self.push_op(
                OpKind::Select,
                *tt,
                vec![Operand::Value(cond_id), tv.clone(), ev.clone()],
            );
            let _ = bt;
            self.set_scalar(name, Operand::Value(id), *tt);
        }
        self.flush(out);
        Ok(())
    }

    fn scalar_snapshot(&self) -> HashMap<String, (Operand, ScalarType)> {
        let mut out = HashMap::new();
        for scope in &self.scopes {
            for (name, b) in scope {
                if let Binding::Scalar(v, t) = b {
                    out.insert(name.clone(), (v.clone(), *t));
                }
            }
        }
        out
    }

    fn restore_scalars(&mut self, snapshot: &HashMap<String, (Operand, ScalarType)>) {
        for scope in self.scopes.iter_mut() {
            for (name, b) in scope.iter_mut() {
                if let Binding::Scalar(..) = b {
                    if let Some((v, t)) = snapshot.get(name) {
                        *b = Binding::Scalar(v.clone(), *t);
                    }
                }
            }
        }
    }

    fn lower_loop(&mut self, l: &ForLoop, id: LoopId) -> Result<HirLoop, LowerError> {
        // scalars from outer scopes that the body reassigns become phis
        let assigned = assigned_outer_scalars(&l.body);
        let mut phis: Vec<(String, OpId, ScalarType)> = Vec::new();
        self.loop_stack.push(id.clone());
        for name in &assigned {
            if let Some(Binding::Scalar(init, ty)) = self.lookup(name) {
                let phi = self.push_op(OpKind::Phi, ty, vec![init, Operand::Const(0.0)]);
                self.set_scalar(name, Operand::Value(phi), ty);
                phis.push((name.clone(), phi, ty));
            }
        }
        // phis live in `HirLoop::phis`, not in a block
        self.watermark = self.ops.len();

        self.scopes.push(HashMap::new());
        self.declare(&l.var, Binding::IndVar(id.clone()));
        let mut body = Block::default();
        let inner_result = self.lower_block_inner(&l.body, &mut body);
        self.scopes.pop();
        self.loop_stack.pop();
        inner_result?;

        // fix up back edges and propagate the post-loop value
        for (name, phi, _ty) in &phis {
            if let Some(Binding::Scalar(final_v, ft)) = self.lookup(name) {
                self.ops[phi.0].operands[1] = final_v.clone();
                // after the loop the scalar holds the last-iteration value,
                // which is exactly `final_v` in dataflow terms
                self.set_scalar(name, final_v, ft);
            }
        }

        Ok(HirLoop {
            id,
            var: l.var.clone(),
            start: l.start,
            bound: l.bound,
            step: l.step,
            phis: phis.iter().map(|(_, p, _)| *p).collect(),
            body,
        })
    }
}

// Affine coefficients come straight from source literals, so adversarial
// programs (`a[i * 9e18 * 9e18]`) can drive the i64 arithmetic here past
// its range. Saturation keeps the lowering deterministic and panic-free;
// sema's loop-bound caps keep *legal* programs far away from the limits.
fn affine_combine(mut a: AffineIndex, b: AffineIndex, sign: i64) -> AffineIndex {
    a.constant = a.constant.saturating_add(sign.saturating_mul(b.constant));
    for (l, c) in b.terms {
        match a.terms.iter_mut().find(|(al, _)| *al == l) {
            Some((_, ac)) => *ac = ac.saturating_add(sign.saturating_mul(c)),
            None => a.terms.push((l, sign.saturating_mul(c))),
        }
    }
    a.terms.retain(|(_, c)| *c != 0);
    a
}

fn affine_scale(mut a: AffineIndex, k: i64) -> AffineIndex {
    a.constant = a.constant.saturating_mul(k);
    for (_, c) in &mut a.terms {
        *c = c.saturating_mul(k);
    }
    a.terms.retain(|(_, c)| *c != 0);
    a
}

/// Constant folding with the same semantics the runtime ops have: integer
/// operations go through [`int_binop`] (truncate, saturate, defined
/// division by zero), float operations are plain `f64`. Folding with the
/// wrong type — the old behavior folded `7 / 2` to `3.5` even when both
/// sides were `int` — is exactly the kind of silent semantics drift the
/// interpreter differential oracle exists to catch.
fn fold(op: BinOp, a: f64, b: f64, float: bool) -> Option<f64> {
    Some(match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem if !float => {
            // div/rem by zero folds to the runtime result (0), so the
            // emitted graph and the folded constant agree either way
            int_binop(op, a, b)?
        }
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return None;
            }
            a / b
        }
        BinOp::Rem => return None,
        BinOp::Lt => f64::from(a < b),
        BinOp::Le => f64::from(a <= b),
        BinOp::Gt => f64::from(a > b),
        BinOp::Ge => f64::from(a >= b),
        BinOp::Eq => f64::from(a == b),
        BinOp::Ne => f64::from(a != b),
        BinOp::And => f64::from(a != 0.0 && b != 0.0),
        BinOp::Or => f64::from(a != 0.0 || b != 0.0),
    })
}

/// Integer arithmetic on the `f64` value domain, shared verbatim with the
/// HIR interpreter (`hir::interp`) and mirrored by the AST reference
/// interpreter (`crates/interp`): operands truncate toward zero,
/// add/sub/mul saturate, and `x/0 == x%0 == 0`.
pub fn int_binop(op: BinOp, a: f64, b: f64) -> Option<f64> {
    let (ia, ib) = (a.trunc() as i64, b.trunc() as i64);
    let v = match op {
        BinOp::Add => ia.saturating_add(ib),
        BinOp::Sub => ia.saturating_sub(ib),
        BinOp::Mul => ia.saturating_mul(ib),
        BinOp::Div => {
            if ib == 0 {
                0
            } else {
                ia.checked_div(ib).unwrap_or(i64::MAX)
            }
        }
        BinOp::Rem => {
            if ib == 0 {
                0
            } else {
                ia.checked_rem(ib).unwrap_or(0)
            }
        }
        _ => return None,
    };
    Some(v as f64)
}

fn contains_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For(_) => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => contains_loop(then_body) || contains_loop(else_body),
        _ => false,
    })
}

/// Names assigned in `stmts` but not declared there (candidates for phis).
fn assigned_outer_scalars(stmts: &[Stmt]) -> Vec<String> {
    fn walk(stmts: &[Stmt], declared: &mut HashSet<String>, out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Decl { name, .. } => {
                    declared.insert(name.clone());
                }
                Stmt::Assign {
                    target: LValue::Var(name),
                    ..
                } if !declared.contains(name) && !out.contains(name) => {
                    out.push(name.clone());
                }
                Stmt::For(l) => {
                    let mut inner_declared = declared.clone();
                    inner_declared.insert(l.var.clone());
                    walk(&l.body, &mut inner_declared, out);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let mut d1 = declared.clone();
                    walk(then_body, &mut d1, out);
                    let mut d2 = declared.clone();
                    walk(else_body, &mut d2, out);
                }
                _ => {}
            }
        }
    }
    let mut declared = HashSet::new();
    let mut out = Vec::new();
    walk(stmts, &mut declared, &mut out);
    out
}

fn lower_function(func: &FunctionDef) -> Result<Function, LowerError> {
    let arrays: Vec<ArrayInfo> = func
        .params
        .iter()
        .filter(|p| p.is_array())
        .map(|p| ArrayInfo {
            name: p.name.clone(),
            elem: ScalarType::from(p.ty),
            dims: p.dims.clone(),
        })
        .collect();

    let mut lowerer = Lowerer {
        func,
        arrays: arrays.clone(),
        ops: Vec::new(),
        scopes: vec![HashMap::new()],
        loop_stack: Vec::new(),
        pred: None,
        watermark: 0,
    };

    let mut body = Block::default();
    // bind parameters
    for p in &func.params {
        if p.is_array() {
            let idx = lowerer
                .arrays
                .iter()
                .position(|a| a.name == p.name)
                .expect("array registered");
            lowerer.declare(&p.name, Binding::Array(idx));
        } else {
            let ty = ScalarType::from(p.ty);
            let id = lowerer.push_op(OpKind::Param(p.name.clone()), ty, Vec::new());
            lowerer.declare(&p.name, Binding::Scalar(Operand::Value(id), ty));
        }
    }
    lowerer.flush(&mut body);

    lowerer.lower_block_inner(&func.body, &mut body)?;
    let source_pragmas = source_config(func);
    Ok(Function::new(
        func.name.clone(),
        arrays,
        lowerer.ops,
        body,
        source_pragmas,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_src(src: &str) -> Module {
        let p = frontc::parse(src).expect("frontend ok");
        lower(&p).expect("lowering ok")
    }

    #[test]
    fn lowers_accumulating_loop_with_phi() {
        let m = lower_src(
            r#"
void dot(float a[16], float b[16], float out[1]) {
    float acc = 0.0;
    for (int i = 0; i < 16; i++) {
        acc += a[i] * b[i];
    }
    out[0] = acc;
}
"#,
        );
        let f = m.function("dot").unwrap();
        assert_eq!(f.loops().len(), 1);
        let l = f.find_loop(&LoopId::from_path(&[0])).unwrap();
        assert_eq!(l.phis.len(), 1, "acc must become a phi");
        let phi = f.op(l.phis[0]);
        assert_eq!(phi.kind, OpKind::Phi);
        // back edge must point at the fadd
        let Operand::Value(next) = &phi.operands[1] else {
            panic!("phi back edge not fixed up: {:?}", phi.operands[1]);
        };
        assert_eq!(f.op(*next).kind, OpKind::FAdd);
    }

    #[test]
    fn affine_access_extraction() {
        let m = lower_src(
            r#"
void copy(float a[8][8], float b[8][8]) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            b[i][j] = a[j][i + 1];
        }
    }
}
"#,
        );
        let f = m.function("copy").unwrap();
        let i = LoopId::from_path(&[0]);
        let j = LoopId::from_path(&[0, 0]);
        let loads: Vec<&Op> = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. }))
            .collect();
        assert_eq!(loads.len(), 1);
        let OpKind::Load {
            access: AccessPattern::Affine(dims),
            ..
        } = &loads[0].kind
        else {
            panic!("expected affine load");
        };
        assert_eq!(dims[0].coeff(&j), 1);
        assert_eq!(dims[1].coeff(&i), 1);
        assert_eq!(dims[1].constant, 1);
    }

    #[test]
    fn dynamic_access_detected() {
        let m = lower_src(
            r#"
void gather(int idx[8], float a[64], float out[8]) {
    for (int i = 0; i < 8; i++) {
        out[i] = a[idx[i]];
    }
}
"#,
        );
        let f = m.function("gather").unwrap();
        let dynamic_loads = f
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    &o.kind,
                    OpKind::Load {
                        access: AccessPattern::Dynamic { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(dynamic_loads, 1, "a[idx[i]] must be dynamic");
    }

    #[test]
    fn nested_loop_ids_follow_paths() {
        let m = lower_src(
            r#"
void two(float a[4], float b[4]) {
    for (int i = 0; i < 4; i++) { a[i] = 0.0; }
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) { b[i] = b[i] + 1.0; }
    }
}
"#,
        );
        let f = m.function("two").unwrap();
        let ids: Vec<String> = f.loops().iter().map(|l| l.id.to_string()).collect();
        assert_eq!(ids, vec!["L0", "L1", "L1.L0"]);
        assert!(f.loop_meta(&LoopId::from_path(&[1])).unwrap().perfect);
        assert!(f.loop_meta(&LoopId::from_path(&[0])).unwrap().innermost);
    }

    #[test]
    fn if_becomes_select() {
        let m = lower_src(
            r#"
void clamp(float a[8]) {
    for (int i = 0; i < 8; i++) {
        float v = a[i];
        if (v > 1.0) {
            v = 1.0;
        }
        a[i] = v;
    }
}
"#,
        );
        let f = m.function("clamp").unwrap();
        assert!(
            f.ops.iter().any(|o| o.kind == OpKind::Select),
            "if must lower to select"
        );
    }

    #[test]
    fn compound_array_assign_loads_then_stores() {
        let m = lower_src(
            r#"
void inc(float a[8]) {
    for (int i = 0; i < 8; i++) {
        a[i] += 1.0;
    }
}
"#,
        );
        let f = m.function("inc").unwrap();
        let loads = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. }))
            .count();
        let stores = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Store { .. }))
            .count();
        assert_eq!((loads, stores), (1, 1));
    }

    #[test]
    fn source_pragmas_collected() {
        let m = lower_src(
            r#"
void k(float a[16]) {
    #pragma HLS array_partition variable=a cyclic factor=4 dim=1
    for (int i = 0; i < 16; i++) {
        #pragma HLS pipeline
        #pragma HLS unroll factor=2
        a[i] = a[i] * 2.0;
    }
}
"#,
        );
        let f = m.function("k").unwrap();
        let cfg = &f.source_pragmas;
        let l = LoopId::from_path(&[0]);
        assert!(cfg.loop_pragma(&l).pipeline);
        assert_eq!(cfg.loop_pragma(&l).unroll, Unroll::Factor(2));
        assert_eq!(cfg.array_banks("a", &[16]), 4);
    }

    #[test]
    fn ternary_lowers_to_select() {
        let m = lower_src(
            "void relu(float a[8]) { for (int i = 0; i < 8; i++) { a[i] = a[i] > 0.0 ? a[i] : 0.0; } }",
        );
        let f = m.function("relu").unwrap();
        assert!(f.ops.iter().any(|o| o.kind == OpKind::Select));
    }

    #[test]
    fn loops_under_if_rejected() {
        let p = frontc::parse(
            "void f(float a[4]) { int c = 1; if (c) { for (int i = 0; i < 4; i++) { a[i] = 0.0; } } }",
        )
        .unwrap();
        assert!(lower(&p).is_err());
    }

    #[test]
    fn scalar_params_become_param_ops() {
        let m = lower_src("void f(float alpha, float a[4]) { a[0] = alpha; }");
        let f = m.function("f").unwrap();
        assert!(f
            .ops
            .iter()
            .any(|o| matches!(&o.kind, OpKind::Param(n) if n == "alpha")));
    }
}
