//! A reference interpreter for the HIR.
//!
//! Executes a lowered function on concrete array/scalar inputs. Its purpose
//! is **differential testing**: the lowering (SSA renaming, if-conversion,
//! phi construction) is validated by checking that interpreting the HIR
//! reproduces the source semantics on concrete data. The prediction stack
//! never needs it at runtime.

use std::collections::HashMap;

use pragma::LoopId;

use crate::ir::{Block, CmpOp, Function, HirLoop, Item, OpId, OpKind, Operand, ScalarType};

/// Interpreter error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interp: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Concrete memory state: one flat `f64` buffer per array.
///
/// # Example
///
/// ```
/// use hir::Memory;
/// let mut mem = Memory::new();
/// mem.set("a", vec![1.0, 2.0, 3.0]);
/// assert_eq!(mem.get("a").unwrap()[1], 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Memory {
    arrays: HashMap<String, Vec<f64>>,
    /// Scalar parameter values.
    pub scalars: HashMap<String, f64>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an array buffer (row-major for multi-dimensional arrays).
    pub fn set(&mut self, name: impl Into<String>, data: Vec<f64>) {
        self.arrays.insert(name.into(), data);
    }

    /// Reads an array buffer.
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.arrays.get(name).map(|v| v.as_slice())
    }

    /// Mutable access to an array buffer (used by the AST-level reference
    /// interpreter in `crates/interp`, which shares this memory model).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut [f64]> {
        self.arrays.get_mut(name).map(|v| v.as_mut_slice())
    }

    /// Names of all installed arrays, sorted (deterministic iteration).
    pub fn array_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.arrays.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Fills every array of `func` with a deterministic pattern (useful for
    /// differential tests).
    pub fn seeded_for(func: &Function, seed: u64) -> Self {
        let mut mem = Memory::new();
        for a in &func.arrays {
            let n = a.num_elements();
            let data = (0..n)
                .map(|i| {
                    let x = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
                    ((x % 1000) as f64) / 100.0 - 4.0
                })
                .collect();
            mem.set(a.name.clone(), data);
        }
        mem
    }
}

/// Executes `func` against `mem`, mutating array contents in place.
///
/// # Errors
///
/// Returns [`InterpError`] on missing arrays, out-of-bounds accesses, or
/// malformed operand references (all of which indicate lowering bugs).
pub fn execute(func: &Function, mem: &mut Memory) -> Result<(), InterpError> {
    let mut ctx = Ctx {
        func,
        values: HashMap::new(),
        ind: HashMap::new(),
    };
    ctx.run_block(&func.body, mem)
}

struct Ctx<'a> {
    func: &'a Function,
    values: HashMap<OpId, f64>,
    ind: HashMap<LoopId, i64>,
}

impl<'a> Ctx<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, InterpError> {
        Err(InterpError {
            message: message.into(),
        })
    }

    fn operand(&self, o: &Operand, _mem: &Memory) -> Result<f64, InterpError> {
        match o {
            Operand::Const(c) => Ok(*c),
            Operand::IndVar(l) => {
                self.ind
                    .get(l)
                    .copied()
                    .map(|v| v as f64)
                    .ok_or_else(|| InterpError {
                        message: format!("induction variable of {l} not bound"),
                    })
            }
            Operand::Value(id) => self.values.get(id).copied().ok_or_else(|| InterpError {
                message: format!("value {id:?} used before definition"),
            }),
        }
    }

    fn run_block(&mut self, block: &Block, mem: &mut Memory) -> Result<(), InterpError> {
        for item in &block.items {
            match item {
                Item::Op(id) => self.run_op(*id, mem)?,
                Item::Loop(l) => self.run_loop(l, mem)?,
            }
        }
        Ok(())
    }

    fn run_loop(&mut self, l: &HirLoop, mem: &mut Memory) -> Result<(), InterpError> {
        // phi initial values
        for &phi in &l.phis {
            let init = self.operand(&self.func.op(phi).operands[0], mem)?;
            self.values.insert(phi, init);
        }
        let mut i = l.start;
        while i < l.bound {
            self.ind.insert(l.id.clone(), i);
            self.run_block(&l.body, mem)?;
            // latch: phis take their back-edge values
            for &phi in &l.phis {
                let next = self.operand(&self.func.op(phi).operands[1], mem)?;
                self.values.insert(phi, next);
            }
            i += l.step;
        }
        self.ind.remove(&l.id);
        Ok(())
    }

    fn run_op(&mut self, id: OpId, mem: &mut Memory) -> Result<(), InterpError> {
        let op = self.func.op(id);
        // predicated ops only execute when their control condition holds —
        // except loads/selects, which are evaluated speculatively (they are
        // side-effect free), matching the lowering's if-conversion model
        let pred = match op.ctrl {
            Some(c) => self.values.get(&c).copied().unwrap_or(0.0) != 0.0,
            None => true,
        };

        let value = match &op.kind {
            OpKind::Param(name) => mem.scalars.get(name).copied().unwrap_or(0.0),
            OpKind::Phi => {
                // value managed by run_loop; keep current
                self.values.get(&id).copied().unwrap_or(0.0)
            }
            OpKind::Load { array, access } => {
                let idx = self.flat_index(array, access, &op.operands, mem)?;
                let buf = mem.get(array).ok_or_else(|| InterpError {
                    message: format!("array {array:?} missing"),
                })?;
                if idx >= buf.len() {
                    // out-of-bounds speculative loads under a false predicate
                    // read as zero (e.g. fir's guarded `input[n - t]`)
                    if !pred {
                        0.0
                    } else {
                        return self
                            .err(format!("load {array}[{idx}] out of bounds ({})", buf.len()));
                    }
                } else {
                    buf[idx]
                }
            }
            OpKind::Store { array, access } => {
                let value = self.operand(&op.operands[0], mem)?;
                if pred {
                    let extra = &op.operands[1..];
                    let idx = self.flat_index(array, access, extra, mem)?;
                    let buf = mem.arrays.get_mut(array).ok_or_else(|| InterpError {
                        message: format!("array {array:?} missing"),
                    })?;
                    if idx >= buf.len() {
                        return self.err(format!(
                            "store {array}[{idx}] out of bounds ({})",
                            buf.len()
                        ));
                    }
                    buf[idx] = value;
                }
                value
            }
            kind => {
                let a = op
                    .operands
                    .first()
                    .map(|o| self.operand(o, mem))
                    .transpose()?
                    .unwrap_or(0.0);
                let b = op
                    .operands
                    .get(1)
                    .map(|o| self.operand(o, mem))
                    .transpose()?
                    .unwrap_or(0.0);
                // shared with lower::int_binop / the AST reference
                // interpreter: truncate, saturate, x/0 == x%0 == 0
                let int = |op| crate::lower::int_binop(op, a, b).unwrap_or(0.0);
                match kind {
                    OpKind::Add => int(frontc::BinOp::Add),
                    OpKind::Sub => int(frontc::BinOp::Sub),
                    OpKind::Mul => int(frontc::BinOp::Mul),
                    OpKind::Div => int(frontc::BinOp::Div),
                    OpKind::Rem => int(frontc::BinOp::Rem),
                    OpKind::FAdd => a + b,
                    OpKind::FSub => a - b,
                    OpKind::FMul => a * b,
                    OpKind::FDiv => {
                        if b == 0.0 {
                            0.0
                        } else {
                            a / b
                        }
                    }
                    OpKind::ICmp(c) | OpKind::FCmp(c) => {
                        let r = match c {
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                        };
                        f64::from(u8::from(r))
                    }
                    OpKind::And => f64::from(u8::from(a != 0.0 && b != 0.0)),
                    OpKind::Or => f64::from(u8::from(a != 0.0 || b != 0.0)),
                    OpKind::Not => f64::from(u8::from(a == 0.0)),
                    OpKind::Select => {
                        let c = self.operand(&op.operands[2], mem)?;
                        let _ = c;
                        let cond = a;
                        let t = b;
                        let e = self.operand(&op.operands[2], mem)?;
                        if cond != 0.0 {
                            t
                        } else {
                            e
                        }
                    }
                    OpKind::Sqrt => a.max(0.0).sqrt(),
                    OpKind::Exp => a.exp(),
                    OpKind::Abs => a.abs(),
                    OpKind::Max => a.max(b),
                    OpKind::Min => a.min(b),
                    OpKind::Cast => match op.ty {
                        ScalarType::Int => a.trunc(),
                        ScalarType::Float => a,
                    },
                    _ => unreachable!("memory/phi/param handled above"),
                }
            }
        };
        self.values.insert(id, value);
        Ok(())
    }

    /// Flattens a (possibly dynamic) access to a row-major element index.
    fn flat_index(
        &self,
        array: &str,
        access: &crate::ir::AccessPattern,
        dyn_operands: &[Operand],
        mem: &Memory,
    ) -> Result<usize, InterpError> {
        let info = self.func.array(array).ok_or_else(|| InterpError {
            message: format!("unknown array {array:?}"),
        })?;
        let dims = &info.dims;
        let indices: Vec<i64> = match access {
            crate::ir::AccessPattern::Affine(idxs) => idxs
                .iter()
                .map(|ix| ix.eval(&|l| self.ind.get(l).copied().unwrap_or(0)))
                .collect(),
            crate::ir::AccessPattern::Dynamic { rank } => {
                let mut out = Vec::with_capacity(*rank);
                for o in dyn_operands.iter().take(*rank) {
                    out.push(self.operand(o, mem)?.trunc() as i64);
                }
                out
            }
        };
        // accumulate in i128: adversarial dynamic indices (huge literals)
        // must flatten to a sentinel OOB value, never overflow
        let mut flat: i128 = 0;
        for (d, &ix) in indices.iter().enumerate() {
            let n = dims.get(d).copied().unwrap_or(1) as i128;
            flat = flat * n + ix as i128;
        }
        if flat < 0 || flat > usize::MAX as i128 {
            // clamp out-of-range speculative addresses to a sentinel OOB value
            return Ok(usize::MAX);
        }
        Ok(flat as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn run(src: &str, name: &str, mem: &mut Memory) {
        let module = lower(&frontc::parse(src).unwrap()).unwrap();
        let f = module.function(name).unwrap();
        execute(f, mem).unwrap();
    }

    #[test]
    fn dot_product_matches_reference() {
        let src = "void dot(float a[8], float b[8], float out[1]) {
            float acc = 0.0;
            for (int i = 0; i < 8; i++) { acc += a[i] * b[i]; }
            out[0] = acc;
        }";
        let mut mem = Memory::new();
        let a: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..8).map(|i| (i as f64) * 0.5).collect();
        let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        mem.set("a", a);
        mem.set("b", b);
        mem.set("out", vec![0.0]);
        run(src, "dot", &mut mem);
        assert!((mem.get("out").unwrap()[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn else_branch_stores_run_under_the_negated_predicate() {
        // regression: the else body used to be lowered under the *then*
        // predicate, so when the condition held, both stores executed and
        // the else store clobbered the then store (found by the generated
        // differential corpus, seed 0)
        let src = "void k(float a[4]) {
            for (int i = 0; i < 4; i++) {
                if (i < 2) { a[i] = 10.0; } else { a[i] = 20.0; }
            }
        }";
        let mut mem = Memory::new();
        mem.set("a", vec![0.0; 4]);
        run(src, "k", &mut mem);
        assert_eq!(mem.get("a").unwrap(), &[10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn if_conversion_preserves_semantics() {
        let src = "void clamp(float a[6]) {
            for (int i = 0; i < 6; i++) {
                float v = a[i];
                if (v > 2.0) { v = 2.0; } else { v = v + 1.0; }
                a[i] = v;
            }
        }";
        let mut mem = Memory::new();
        mem.set("a", vec![0.0, 1.0, 2.0, 3.0, 4.0, -1.0]);
        run(src, "clamp", &mut mem);
        assert_eq!(mem.get("a").unwrap(), &[1.0, 2.0, 3.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn matrix_vector_matches_reference() {
        let src = "void mv(float m[3][3], float x[3], float y[3]) {
            for (int i = 0; i < 3; i++) {
                float acc = 0.0;
                for (int j = 0; j < 3; j++) { acc += m[i][j] * x[j]; }
                y[i] = acc;
            }
        }";
        let mut mem = Memory::new();
        mem.set("m", (1..=9).map(|v| v as f64).collect());
        mem.set("x", vec![1.0, 0.0, -1.0]);
        mem.set("y", vec![0.0; 3]);
        run(src, "mv", &mut mem);
        assert_eq!(mem.get("y").unwrap(), &[-2.0, -2.0, -2.0]);
    }

    #[test]
    fn dynamic_indexing_gathers() {
        let src = "void gather(int idx[4], float a[8], float out[4]) {
            for (int i = 0; i < 4; i++) { out[i] = a[idx[i]]; }
        }";
        let mut mem = Memory::new();
        mem.set("idx", vec![3.0, 0.0, 7.0, 1.0]);
        mem.set("a", (0..8).map(|v| v as f64 * 10.0).collect());
        mem.set("out", vec![0.0; 4]);
        run(src, "gather", &mut mem);
        assert_eq!(mem.get("out").unwrap(), &[30.0, 0.0, 70.0, 10.0]);
    }

    #[test]
    fn scalar_params_flow_in() {
        let src = "void saxpy(float alpha, float x[4], float y[4]) {
            for (int i = 0; i < 4; i++) { y[i] = alpha * x[i] + y[i]; }
        }";
        let module = lower(&frontc::parse(src).unwrap()).unwrap();
        let f = module.function("saxpy").unwrap();
        let mut mem = Memory::new();
        mem.scalars.insert("alpha".into(), 2.0);
        mem.set("x", vec![1.0, 2.0, 3.0, 4.0]);
        mem.set("y", vec![10.0; 4]);
        execute(f, &mut mem).unwrap();
        assert_eq!(mem.get("y").unwrap(), &[12.0, 14.0, 16.0, 18.0]);
    }

    #[test]
    fn all_bundled_kernels_execute() {
        for k in [
            "gemm",
            "atax",
            "bicg",
            "mvt",
            "fir",
            "spmv",
            "nn_dist",
            "stencil2d",
        ] {
            let src = kernels_source(k);
            let module = lower(&frontc::parse(src).unwrap()).unwrap();
            let f = module.function(k).unwrap();
            let mut mem = Memory::seeded_for(f, 42);
            // clamp spmv's dynamic indices into range
            if k == "spmv" {
                let cols: Vec<f64> = (0..32 * 8).map(|i| (i % 32) as f64).collect();
                mem.set("cols", cols);
            }
            execute(f, &mut mem).unwrap_or_else(|e| panic!("{k}: {e}"));
        }
    }

    // local copy to avoid a dev-dependency cycle with the kernels crate
    fn kernels_source(name: &str) -> &'static str {
        match name {
            "gemm" => "void gemm(float a[16][16], float b[16][16], float c[16][16]) {
                for (int i = 0; i < 16; i++) { for (int j = 0; j < 16; j++) {
                    float acc = 0.0;
                    for (int k = 0; k < 16; k++) { acc += a[i][k] * b[k][j]; }
                    c[i][j] = acc;
                } } }",
            "atax" => "void atax(float a[32][32], float x[32], float y[32], float tmp[32]) {
                for (int i = 0; i < 32; i++) { float acc = 0.0;
                    for (int j = 0; j < 32; j++) { acc += a[i][j] * x[j]; } tmp[i] = acc; }
                for (int j = 0; j < 32; j++) { float acc = 0.0;
                    for (int i = 0; i < 32; i++) { acc += a[i][j] * tmp[i]; } y[j] = acc; } }",
            "bicg" => "void bicg(float a[32][32], float s[32], float q[32], float p[32], float r[32]) {
                for (int i = 0; i < 32; i++) { s[i] = 0.0; }
                for (int i = 0; i < 32; i++) { float acc = 0.0;
                    for (int j = 0; j < 32; j++) { s[j] = s[j] + r[i] * a[i][j]; acc += a[i][j] * p[j]; }
                    q[i] = acc; } }",
            "mvt" => "void mvt(float a[32][32], float x1[32], float x2[32], float y1[32], float y2[32]) {
                for (int i = 0; i < 32; i++) { float acc = 0.0;
                    for (int j = 0; j < 32; j++) { acc += a[i][j] * y1[j]; } x1[i] = x1[i] + acc; }
                for (int i = 0; i < 32; i++) { float acc = 0.0;
                    for (int j = 0; j < 32; j++) { acc += a[j][i] * y2[j]; } x2[i] = x2[i] + acc; } }",
            "fir" => "void fir(float input[64], float coeff[16], float output[64]) {
                for (int n = 0; n < 64; n++) { float acc = 0.0;
                    for (int t = 0; t < 16; t++) { if (n - t >= 0) { acc += coeff[t] * input[n - t]; } }
                    output[n] = acc; } }",
            "spmv" => "void spmv(float nzval[32][8], int cols[32][8], float vec[32], float out[32]) {
                for (int i = 0; i < 32; i++) { float sum = 0.0;
                    for (int j = 0; j < 8; j++) { sum += nzval[i][j] * vec[cols[i][j]]; }
                    out[i] = sum; } }",
            "nn_dist" => "void nn_dist(float px[32], float py[32], float pz[32], float dist[32]) {
                for (int i = 0; i < 32; i++) { float best = 1000000.0;
                    for (int j = 0; j < 32; j++) {
                        float dx = px[i] - px[j]; float dy = py[i] - py[j]; float dz = pz[i] - pz[j];
                        float d = sqrtf(dx * dx + dy * dy + dz * dz);
                        if (j != i) { best = fminf(best, d); } }
                    dist[i] = best; } }",
            "stencil2d" => "void stencil2d(float orig[16][16], float filt[3][3], float sol[16][16]) {
                for (int r = 0; r < 14; r++) { for (int c = 0; c < 14; c++) {
                    float temp = 0.0;
                    for (int k1 = 0; k1 < 3; k1++) { for (int k2 = 0; k2 < 3; k2++) {
                        temp += filt[k1][k2] * orig[r + k1][c + k2]; } }
                    sol[r][c] = temp; } } }",
            other => panic!("no source for {other}"),
        }
    }
}
