#![warn(missing_docs)]
//! Structured loop-tree IR ("HIR") for HLS-C kernels.
//!
//! The HIR plays the role LLVM IR plays in the paper: a three-address
//! representation of the kernel with explicit loop structure, def-use
//! chains, loop-carried recurrences (phi nodes) and **affine memory access
//! functions** — everything the graph constructor and the simulated HLS
//! flow need.
//!
//! # Pipeline position
//!
//! ```text
//! frontc::Program  --lower-->  hir::Module  --> cdfg::Graph (+pragma)
//!                                          \--> hlsim ground-truth QoR
//! ```
//!
//! # Example
//!
//! ```
//! let src = r#"
//! void axpy(float a, float x[32], float y[32]) {
//!     for (int i = 0; i < 32; i++) {
//!         y[i] = a * x[i] + y[i];
//!     }
//! }
//! "#;
//! let program = frontc::parse(src)?;
//! let module = hir::lower(&program)?;
//! let f = module.function("axpy").unwrap();
//! assert_eq!(f.loops().len(), 1);
//! assert_eq!(f.loops()[0].trip_count, 32);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
pub mod interp;
mod ir;
mod lower;

pub use analysis::{array_uses, loop_shapes, recurrences, summarize, ArrayUse, Recurrence};
pub use interp::{execute, InterpError, Memory};
pub use ir::{
    AccessPattern, AffineIndex, ArrayInfo, Block, CmpOp, Function, HirLoop, Item, LoopMeta, Module,
    Op, OpId, OpKind, Operand, ScalarType,
};
pub use lower::{int_binop, lower, source_config, LowerError};
