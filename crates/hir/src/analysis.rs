//! HIR analyses: loop shapes, recurrence cycles, array-use summaries.

use pragma::{LoopId, LoopShape};

use crate::ir::{Block, Function, HirLoop, Item, OpId, OpKind, Operand};

/// A loop-carried scalar recurrence (through a phi node).
///
/// The `cycle` lists the ops on the dependence cycle from the phi through
/// the back-edge value and back; its accumulated latency bounds the
/// initiation interval of a pipelined loop (`II_rec` in the paper's
/// formula).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recurrence {
    /// The phi op heading the cycle.
    pub phi: OpId,
    /// Ops on the cycle (excluding the phi itself), in discovery order.
    pub cycle: Vec<OpId>,
    /// Iteration distance of the dependence (always 1 for scalar phis).
    pub distance: u32,
}

/// Memory-traffic summary of one array within a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayUse {
    /// Array name.
    pub array: String,
    /// Load ops per iteration (lexical count).
    pub loads: usize,
    /// Store ops per iteration (lexical count).
    pub stores: usize,
    /// Whether every access is affine.
    pub all_affine: bool,
}

impl ArrayUse {
    /// Total accesses per iteration.
    pub fn accesses(&self) -> usize {
        self.loads + self.stores
    }
}

/// Builds [`LoopShape`] trees for the pragma design-space machinery.
pub fn loop_shapes(func: &Function) -> Vec<LoopShape> {
    fn shape_of(l: &HirLoop) -> LoopShape {
        let children: Vec<LoopShape> = l.children().map(shape_of).collect();
        LoopShape {
            id: l.id.clone(),
            trip_count: l.trip_count(),
            perfect: l.is_perfect_level(),
            children,
        }
    }
    top_loops(&func.body).into_iter().map(shape_of).collect()
}

fn top_loops(block: &Block) -> Vec<&HirLoop> {
    block
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Loop(l) => Some(l),
            Item::Op(_) => None,
        })
        .collect()
}

/// Finds the scalar recurrence cycles of a loop.
///
/// For each phi, the back-edge operand is traced through def-use chains; the
/// ops encountered before reaching the phi again form the cycle. Returns an
/// empty list for loops without phis (no loop-carried scalar dependence).
pub fn recurrences(func: &Function, loop_id: &LoopId) -> Vec<Recurrence> {
    let Some(l) = func.find_loop(loop_id) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &phi in &l.phis {
        let back = &func.op(phi).operands[1];
        let mut cycle = Vec::new();
        let mut stack: Vec<OpId> = Vec::new();
        if let Operand::Value(v) = back {
            stack.push(*v);
        }
        let mut visited = std::collections::HashSet::new();
        let mut reaches_phi = false;
        while let Some(id) = stack.pop() {
            if id == phi {
                reaches_phi = true;
                continue;
            }
            if !visited.insert(id) {
                continue;
            }
            cycle.push(id);
            for opnd in &func.op(id).operands {
                if let Operand::Value(v) = opnd {
                    stack.push(*v);
                }
            }
        }
        if reaches_phi {
            // keep only ops that can actually reach the phi (on the cycle):
            // prune pure fan-in that does not depend on the phi
            let on_cycle: Vec<OpId> = cycle
                .into_iter()
                .filter(|&id| depends_on(func, id, phi, &mut Default::default()))
                .collect();
            out.push(Recurrence {
                phi,
                cycle: on_cycle,
                distance: 1,
            });
        }
    }
    out
}

fn depends_on(
    func: &Function,
    from: OpId,
    target: OpId,
    memo: &mut std::collections::HashMap<OpId, bool>,
) -> bool {
    if from == target {
        return true;
    }
    if let Some(&v) = memo.get(&from) {
        return v;
    }
    memo.insert(from, false); // break cycles conservatively
    let result = func.op(from).operands.iter().any(|o| match o {
        Operand::Value(v) => *v == target || depends_on(func, *v, target, memo),
        _ => false,
    });
    memo.insert(from, result);
    result
}

/// Summarizes array accesses lexically inside a loop body.
///
/// With `recursive`, accesses of nested loops are included (used when inner
/// loops are fully unrolled into a pipelined region).
pub fn array_uses(func: &Function, loop_id: &LoopId, recursive: bool) -> Vec<ArrayUse> {
    let ops = func.ops_in_loop(loop_id, recursive);
    summarize(func, &ops)
}

/// Summarizes array accesses of an explicit op set.
pub fn summarize(func: &Function, ops: &[OpId]) -> Vec<ArrayUse> {
    let mut map: std::collections::BTreeMap<String, ArrayUse> = Default::default();
    for &id in ops {
        let op = func.op(id);
        match &op.kind {
            OpKind::Load { array, access } => {
                let e = map.entry(array.clone()).or_insert_with(|| ArrayUse {
                    array: array.clone(),
                    loads: 0,
                    stores: 0,
                    all_affine: true,
                });
                e.loads += 1;
                e.all_affine &= access.is_affine();
            }
            OpKind::Store { array, access } => {
                let e = map.entry(array.clone()).or_insert_with(|| ArrayUse {
                    array: array.clone(),
                    loads: 0,
                    stores: 0,
                    all_affine: true,
                });
                e.stores += 1;
                e.all_affine &= access.is_affine();
            }
            _ => {}
        }
    }
    map.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn func(src: &str, name: &str) -> Function {
        let p = frontc::parse(src).expect("frontend ok");
        lower(&p)
            .expect("lower ok")
            .function(name)
            .expect("function present")
            .clone()
    }

    #[test]
    fn shapes_mirror_nesting() {
        let f = func(
            r#"
void k(float a[4][4]) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            a[i][j] = 0.0;
        }
    }
}
"#,
            "k",
        );
        let shapes = loop_shapes(&f);
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].trip_count, 4);
        assert!(shapes[0].perfect);
        assert_eq!(shapes[0].children.len(), 1);
        assert!(shapes[0].is_perfect_chain());
    }

    #[test]
    fn accumulation_has_recurrence() {
        let f = func(
            r#"
void dot(float a[16], float b[16], float out[1]) {
    float acc = 0.0;
    for (int i = 0; i < 16; i++) {
        acc += a[i] * b[i];
    }
    out[0] = acc;
}
"#,
            "dot",
        );
        let recs = recurrences(&f, &LoopId::from_path(&[0]));
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].distance, 1);
        // the cycle is exactly the fadd (loads/fmul feed it but do not
        // depend on the phi)
        let kinds: Vec<&str> = recs[0]
            .cycle
            .iter()
            .map(|&id| f.op(id).kind.mnemonic())
            .collect();
        assert_eq!(kinds, vec!["fadd"]);
    }

    #[test]
    fn elementwise_loop_has_no_recurrence() {
        let f = func(
            r#"
void scale(float a[16]) {
    for (int i = 0; i < 16; i++) {
        a[i] = a[i] * 2.0;
    }
}
"#,
            "scale",
        );
        assert!(recurrences(&f, &LoopId::from_path(&[0])).is_empty());
    }

    #[test]
    fn array_use_counts() {
        let f = func(
            r#"
void k(float a[8], float b[8]) {
    for (int i = 0; i < 8; i++) {
        b[i] = a[i] + a[7 - i];
    }
}
"#,
            "k",
        );
        let uses = array_uses(&f, &LoopId::from_path(&[0]), false);
        let a = uses.iter().find(|u| u.array == "a").unwrap();
        let b = uses.iter().find(|u| u.array == "b").unwrap();
        assert_eq!((a.loads, a.stores), (2, 0));
        assert_eq!((b.loads, b.stores), (0, 1));
        assert!(a.all_affine);
        assert_eq!(a.accesses(), 2);
    }

    #[test]
    fn recursive_array_use_includes_inner_loops() {
        let f = func(
            r#"
void k(float a[4][4]) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            a[i][j] = a[i][j] + 1.0;
        }
    }
}
"#,
            "k",
        );
        let outer = LoopId::from_path(&[0]);
        assert!(array_uses(&f, &outer, false).is_empty());
        let rec = array_uses(&f, &outer, true);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].accesses(), 2);
    }
}
