//! HIR data structures.

use std::fmt;

use pragma::LoopId;

/// Scalar value types in the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit integer.
    Int,
    /// 32-bit float.
    Float,
}

impl From<frontc::Type> for ScalarType {
    fn from(t: frontc::Type) -> Self {
        match t {
            frontc::Type::Int => ScalarType::Int,
            frontc::Type::Float | frontc::Type::Void => ScalarType::Float,
        }
    }
}

/// Index of an [`Op`] in its function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// Comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// One affine index expression: `sum(coeff_k * loop_var_k) + constant`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineIndex {
    /// `(loop, coefficient)` terms; loops appear at most once.
    pub terms: Vec<(LoopId, i64)>,
    /// Constant offset.
    pub constant: i64,
}

impl AffineIndex {
    /// Constant index.
    pub fn constant(c: i64) -> Self {
        AffineIndex {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Single-variable index `var + 0`.
    pub fn var(loop_id: LoopId) -> Self {
        AffineIndex {
            terms: vec![(loop_id, 1)],
            constant: 0,
        }
    }

    /// Coefficient of `loop_id` (0 if absent).
    pub fn coeff(&self, loop_id: &LoopId) -> i64 {
        self.terms
            .iter()
            .find(|(l, _)| l == loop_id)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Evaluates the index for concrete induction-variable values.
    pub fn eval(&self, values: &dyn Fn(&LoopId) -> i64) -> i64 {
        // saturating: coefficients of adversarial sources are themselves
        // saturated by the lowering, so products here can reach i64 range
        self.terms.iter().fold(self.constant, |acc, (l, c)| {
            acc.saturating_add(c.saturating_mul(values(l)))
        })
    }

    /// Whether the index depends on `loop_id`.
    pub fn depends_on(&self, loop_id: &LoopId) -> bool {
        self.coeff(loop_id) != 0
    }
}

/// Memory access pattern of one load/store, one entry per array dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Every dimension is an affine function of induction variables.
    Affine(Vec<AffineIndex>),
    /// At least one dimension is data-dependent (e.g. `a[b[i]]`).
    Dynamic {
        /// Number of dimensions.
        rank: usize,
    },
}

impl AccessPattern {
    /// Number of index dimensions.
    pub fn rank(&self) -> usize {
        match self {
            AccessPattern::Affine(v) => v.len(),
            AccessPattern::Dynamic { rank } => *rank,
        }
    }

    /// Whether the pattern is fully affine.
    pub fn is_affine(&self) -> bool {
        matches!(self, AccessPattern::Affine(_))
    }
}

/// Operation kinds (three-address ops).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide.
    Div,
    /// Integer remainder.
    Rem,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Integer comparison.
    ICmp(CmpOp),
    /// Float comparison.
    FCmp(CmpOp),
    /// Logical and of two booleans.
    And,
    /// Logical or of two booleans.
    Or,
    /// Logical not.
    Not,
    /// `select(cond, a, b)`.
    Select,
    /// Square root intrinsic.
    Sqrt,
    /// Exponential intrinsic.
    Exp,
    /// Absolute value intrinsic.
    Abs,
    /// Maximum intrinsic.
    Max,
    /// Minimum intrinsic.
    Min,
    /// Int/float conversion.
    Cast,
    /// Memory read.
    Load {
        /// Source array.
        array: String,
        /// Index pattern.
        access: AccessPattern,
    },
    /// Memory write (operand 0 is the stored value).
    Store {
        /// Destination array.
        array: String,
        /// Index pattern.
        access: AccessPattern,
    },
    /// Loop-carried scalar: operand 0 = initial value, operand 1 = value from
    /// the previous iteration (back edge).
    Phi,
    /// Scalar function parameter read (function entry).
    Param(String),
}

impl OpKind {
    /// Mnemonic used for feature one-hot encoding and debugging.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Rem => "rem",
            OpKind::FAdd => "fadd",
            OpKind::FSub => "fsub",
            OpKind::FMul => "fmul",
            OpKind::FDiv => "fdiv",
            OpKind::ICmp(_) => "icmp",
            OpKind::FCmp(_) => "fcmp",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Not => "not",
            OpKind::Select => "select",
            OpKind::Sqrt => "sqrt",
            OpKind::Exp => "exp",
            OpKind::Abs => "abs",
            OpKind::Max => "max",
            OpKind::Min => "min",
            OpKind::Cast => "cast",
            OpKind::Load { .. } => "load",
            OpKind::Store { .. } => "store",
            OpKind::Phi => "phi",
            OpKind::Param(_) => "param",
        }
    }

    /// Whether the op accesses memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }
}

/// Operand of an op.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Result of another op in the same function.
    Value(OpId),
    /// Compile-time constant.
    Const(f64),
    /// Induction variable of an enclosing loop.
    IndVar(LoopId),
}

/// One three-address operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Kind (including memory access metadata).
    pub kind: OpKind,
    /// Result type.
    pub ty: ScalarType,
    /// Operands in positional order.
    pub operands: Vec<Operand>,
    /// Control predicate: `Some(cond)` when the op executes under an `if`.
    pub ctrl: Option<OpId>,
    /// Innermost loop containing the op (`LoopId::root()` for function-level
    /// straight-line code).
    pub in_loop: LoopId,
}

/// An ordered sequence of ops and nested loops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Items in program order.
    pub items: Vec<Item>,
}

/// Block item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Straight-line op (index into the function arena).
    Op(OpId),
    /// A nested loop.
    Loop(HirLoop),
}

/// A counted loop in the HIR.
#[derive(Debug, Clone, PartialEq)]
pub struct HirLoop {
    /// Loop identifier (path-based).
    pub id: LoopId,
    /// Induction variable name (for diagnostics).
    pub var: String,
    /// Inclusive start.
    pub start: i64,
    /// Exclusive bound.
    pub bound: i64,
    /// Positive step.
    pub step: i64,
    /// Phi ops materialized for loop-carried scalars.
    pub phis: Vec<OpId>,
    /// Loop body.
    pub body: Block,
}

impl HirLoop {
    /// Static trip count.
    pub fn trip_count(&self) -> u64 {
        if self.bound <= self.start || self.step <= 0 {
            0
        } else {
            ((self.bound - self.start + self.step - 1) / self.step) as u64
        }
    }

    /// Child loops in order.
    pub fn children(&self) -> impl Iterator<Item = &HirLoop> {
        self.body.items.iter().filter_map(|i| match i {
            Item::Loop(l) => Some(l),
            Item::Op(_) => None,
        })
    }

    /// Whether the body consists solely of one nested loop (perfect level).
    pub fn is_perfect_level(&self) -> bool {
        self.body.items.len() == 1 && matches!(self.body.items[0], Item::Loop(_))
    }
}

/// Array metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Array name (parameter name).
    pub name: String,
    /// Element type.
    pub elem: ScalarType,
    /// Constant dimensions.
    pub dims: Vec<usize>,
}

impl ArrayInfo {
    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }
}

/// Flat metadata about one loop (mirrors the loop tree for quick lookup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopMeta {
    /// Loop identifier.
    pub id: LoopId,
    /// Induction variable name.
    pub var: String,
    /// Static trip count.
    pub trip_count: u64,
    /// Nesting depth (1 = top level).
    pub depth: usize,
    /// Whether the loop body is just one nested loop.
    pub perfect: bool,
    /// Whether the loop has no nested loops.
    pub innermost: bool,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Array parameters.
    pub arrays: Vec<ArrayInfo>,
    /// Op arena; [`OpId`] indexes into this.
    pub ops: Vec<Op>,
    /// Top-level body.
    pub body: Block,
    /// Pragma configuration written in the source (may be empty).
    pub source_pragmas: pragma::PragmaConfig,
    loop_meta: Vec<LoopMeta>,
}

impl Function {
    pub(crate) fn new(
        name: String,
        arrays: Vec<ArrayInfo>,
        ops: Vec<Op>,
        body: Block,
        source_pragmas: pragma::PragmaConfig,
    ) -> Self {
        let mut f = Function {
            name,
            arrays,
            ops,
            body,
            source_pragmas,
            loop_meta: Vec::new(),
        };
        f.loop_meta = f.collect_loop_meta();
        f
    }

    /// The op behind an id.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0]
    }

    /// Metadata for all loops, in pre-order.
    pub fn loops(&self) -> &[LoopMeta] {
        &self.loop_meta
    }

    /// Metadata for one loop.
    pub fn loop_meta(&self, id: &LoopId) -> Option<&LoopMeta> {
        self.loop_meta.iter().find(|m| &m.id == id)
    }

    /// The loop node for an id.
    pub fn find_loop(&self, id: &LoopId) -> Option<&HirLoop> {
        fn walk<'a>(block: &'a Block, id: &LoopId) -> Option<&'a HirLoop> {
            for item in &block.items {
                if let Item::Loop(l) = item {
                    if &l.id == id {
                        return Some(l);
                    }
                    if l.id.contains(id) {
                        return walk(&l.body, id);
                    }
                }
            }
            None
        }
        walk(&self.body, id)
    }

    /// Array metadata by name.
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Ops lexically inside a loop body; `recursive` includes nested loops.
    pub fn ops_in_loop(&self, id: &LoopId, recursive: bool) -> Vec<OpId> {
        let Some(l) = self.find_loop(id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        collect_ops(&l.body, recursive, &mut out);
        out
    }

    /// Ops at the top level of the function (outside every loop).
    pub fn top_level_ops(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        collect_ops(&self.body, false, &mut out);
        out
    }

    fn collect_loop_meta(&self) -> Vec<LoopMeta> {
        fn walk(block: &Block, depth: usize, out: &mut Vec<LoopMeta>) {
            for item in &block.items {
                if let Item::Loop(l) = item {
                    out.push(LoopMeta {
                        id: l.id.clone(),
                        var: l.var.clone(),
                        trip_count: l.trip_count(),
                        depth,
                        perfect: l.is_perfect_level(),
                        innermost: l.children().next().is_none(),
                    });
                    walk(&l.body, depth + 1, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, 1, &mut out);
        out
    }
}

fn collect_ops(block: &Block, recursive: bool, out: &mut Vec<OpId>) {
    for item in &block.items {
        match item {
            Item::Op(id) => out.push(*id),
            Item::Loop(l) => {
                if recursive {
                    out.extend(l.phis.iter().copied());
                    collect_ops(&l.body, true, out);
                }
            }
        }
    }
}

/// A lowered module (one per translation unit).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Lowered functions.
    pub functions: Vec<Function>,
}

impl Module {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {} ({} ops)", self.name, self.ops.len())?;
        for m in &self.loop_meta {
            writeln!(
                f,
                "  loop {} tc={} depth={}{}{}",
                m.id,
                m.trip_count,
                m.depth,
                if m.perfect { " perfect" } else { "" },
                if m.innermost { " innermost" } else { "" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_index_eval() {
        let i = LoopId::from_path(&[0]);
        let j = LoopId::from_path(&[0, 0]);
        let idx = AffineIndex {
            terms: vec![(i.clone(), 4), (j.clone(), 1)],
            constant: 2,
        };
        let v = idx.eval(&|l| if *l == i { 3 } else { 5 });
        assert_eq!(v, 4 * 3 + 5 + 2);
        assert_eq!(idx.coeff(&i), 4);
        assert!(idx.depends_on(&j));
        assert!(!AffineIndex::constant(7).depends_on(&i));
    }

    #[test]
    fn access_pattern_rank() {
        let a = AccessPattern::Affine(vec![AffineIndex::constant(0); 2]);
        assert_eq!(a.rank(), 2);
        assert!(a.is_affine());
        let d = AccessPattern::Dynamic { rank: 3 };
        assert_eq!(d.rank(), 3);
        assert!(!d.is_affine());
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(OpKind::FAdd.mnemonic(), "fadd");
        assert_eq!(
            OpKind::Load {
                array: "a".into(),
                access: AccessPattern::Dynamic { rank: 1 }
            }
            .mnemonic(),
            "load"
        );
        assert!(OpKind::Store {
            array: "a".into(),
            access: AccessPattern::Dynamic { rank: 1 }
        }
        .is_memory());
    }
}
