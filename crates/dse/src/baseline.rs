//! State-of-the-art baselines: Wu et al. (DAC'22, \[8\]) and GNN-DSE
//! (DAC'22, \[6\]), both as flat (non-hierarchical) whole-graph GNNs.

use gnn::{
    train_regression, ConvKind, EncoderConfig, GraphData, Normalizer, RegressionModel, TrainConfig,
};
use hir::Function;
use hlsim::Qor;
use pragma::{LoopId, PragmaConfig};
use qor_core::{graph_aggregates, graph_to_gnn, GlobalEval, QorError, AGG_DIM, FEATURE_DIM};
use tensor::{Matrix, ParamStore};

/// Which labels the baseline trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSpace {
    /// Post-route ground truth (what the paper and \[8\] target).
    PostRoute,
    /// Post-HLS estimates (what GNN-DSE \[6\] targets) — systematically
    /// biased w.r.t. post-route truth.
    PostHls,
}

/// Baseline training options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineOptions {
    /// Propagation layer.
    pub conv: ConvKind,
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Node cap for graph construction.
    pub graph_max_nodes: usize,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            conv: ConvKind::Sage,
            hidden: 24,
            epochs: 30,
            batch_size: 24,
            lr: 4e-3,
            seed: 11,
            graph_max_nodes: 320,
        }
    }
}

/// Extra feature columns appended by the GNN-DSE variant: any-enclosing
/// pipeline flag, log unroll product, log partition banks, innermost
/// pipeline flag, any-flatten flag, log innermost trip count.
const PRAGMA_FEATURE_COLS: usize = 6;

/// A flat whole-graph GNN baseline.
///
/// Three configurations reproduce the two prior works:
///
/// * [`FlatGnnBaseline::wu_accuracy`] — \[8\] as evaluated in Table IV:
///   pragma-blind graphs (their graph construction does not model pragmas),
///   post-route labels.
/// * [`FlatGnnBaseline::wu_dse`] — \[8\] as deployed in Table V: the model
///   reads HLS IR, so its graphs reflect pragma transformations, but there
///   is no hierarchy and no loop-level features — and every DSE query
///   requires an HLS run (charge [`crate::HLS_SECS_PER_DESIGN`]).
/// * [`FlatGnnBaseline::gnn_dse`] — \[6\]: pragma-blind graph *structure*
///   with pragmas as node features, trained on post-HLS labels.
#[derive(Debug)]
pub struct FlatGnnBaseline {
    store: ParamStore,
    model: RegressionModel,
    opts: BaselineOptions,
    structural_pragmas: bool,
    pragma_features: bool,
    labels: LabelSpace,
    norm: Normalizer,
}

impl FlatGnnBaseline {
    /// Fully explicit constructor for ablation studies: choose whether
    /// pragmas enter the graph structure, whether they are appended as node
    /// features, and which label space to train on.
    pub fn with_config(
        opts: BaselineOptions,
        structural_pragmas: bool,
        pragma_features: bool,
        labels: LabelSpace,
    ) -> Self {
        let in_dim = FEATURE_DIM
            + if pragma_features {
                PRAGMA_FEATURE_COLS
            } else {
                0
            };
        let mut store = ParamStore::new();
        let model = RegressionModel::new(
            &mut store,
            &EncoderConfig::new(opts.conv, in_dim, opts.hidden),
            AGG_DIM,
            4,
            opts.seed,
        );
        FlatGnnBaseline {
            store,
            model,
            opts,
            structural_pragmas,
            pragma_features,
            labels,
            norm: Normalizer::identity(4),
        }
    }

    /// Wu et al. \[8\] for the accuracy comparison (Table IV).
    pub fn wu_accuracy(opts: BaselineOptions) -> Self {
        Self::with_config(opts, false, false, LabelSpace::PostRoute)
    }

    /// Wu et al. \[8\] for DSE (Table V) — HLS-IR-fed graphs.
    pub fn wu_dse(opts: BaselineOptions) -> Self {
        Self::with_config(opts, true, false, LabelSpace::PostRoute)
    }

    /// GNN-DSE \[6\] — pragma features, post-HLS labels.
    pub fn gnn_dse(opts: BaselineOptions) -> Self {
        Self::with_config(opts, false, true, LabelSpace::PostHls)
    }

    /// Whether this baseline requires an HLS run per inference (true for
    /// the HLS-IR-fed variant), for DSE time accounting.
    pub fn needs_hls(&self) -> bool {
        self.structural_pragmas
    }

    /// Builds this baseline's graph representation of a configured design.
    ///
    /// The HLS-IR-fed variant sees the loop transformations (the IR after
    /// HLS reflects unrolling) but **not** banked memory ports — Wu et
    /// al.'s representation does not model array partitioning, which is
    /// one reason it trails on pragma-rich spaces.
    pub fn graph_data(&self, func: &Function, cfg: &PragmaConfig) -> GraphData {
        let blind = PragmaConfig::default();
        let loops_only;
        let build_cfg = if self.structural_pragmas {
            loops_only = strip_partitions(cfg);
            &loops_only
        } else {
            &blind
        };
        let graph = cdfg::GraphBuilder::new(func, build_cfg)
            .options(cdfg::GraphOptions {
                max_nodes: self.opts.graph_max_nodes,
            })
            .build();
        let mut base = graph_to_gnn(&graph);
        base.g_feats = graph_aggregates(&graph);
        if !self.pragma_features {
            return base;
        }
        // append pragma-as-feature columns (the GNN-DSE approach)
        let n = base.num_nodes();
        let mut x = Matrix::zeros(n, FEATURE_DIM + PRAGMA_FEATURE_COLS);
        for i in 0..n {
            x.row_mut(i)[..FEATURE_DIM].copy_from_slice(base.x.row(i));
            let node = &graph.nodes[i];
            let (pipelined, unroll) = enclosing_pragmas(cfg, &node.loop_path);
            x[(i, FEATURE_DIM)] = f32::from(u8::from(pipelined));
            x[(i, FEATURE_DIM + 1)] = (unroll as f32 + 1.0).ln();
            let banks = node_array(func, node)
                .map(|a| {
                    let info = func.array(a).expect("known array");
                    cfg.array_banks(a, &info.dims) as f32
                })
                .unwrap_or(1.0);
            x[(i, FEATURE_DIM + 2)] = (banks + 1.0).ln();
            let inner = cfg.loop_pragma(&node.loop_path);
            x[(i, FEATURE_DIM + 3)] = f32::from(u8::from(inner.pipeline));
            let flatten_any = {
                let path = node.loop_path.path();
                (1..=path.len()).any(|d| cfg.loop_pragma(&LoopId::from_path(&path[..d])).flatten)
            };
            x[(i, FEATURE_DIM + 4)] = f32::from(u8::from(flatten_any));
            let tc = func
                .loop_meta(&node.loop_path)
                .map(|m| m.trip_count)
                .unwrap_or(1);
            x[(i, FEATURE_DIM + 5)] = (tc as f32 + 1.0).ln();
        }
        GraphData::with_features(x, base.src, base.dst, base.g_feats)
    }

    /// Trains on the labeled designs.
    ///
    /// # Errors
    ///
    /// Returns [`QorError::UnknownKernel`] if a design references a kernel
    /// the dataset never registered.
    pub fn train(&mut self, designs: &qor_core::LabeledDesigns) -> Result<(), QorError> {
        let to_sample = |s: &qor_core::DesignSample| {
            let func = designs.function_of(s)?;
            let g = self.graph_data(func, &s.config);
            let q = match self.labels {
                LabelSpace::PostRoute => s.report.top,
                LabelSpace::PostHls => s.report.pre_route,
            };
            let y = vec![
                log1p(q.latency as f64),
                log1p(q.lut as f64),
                log1p(q.ff as f64),
                log1p(q.dsp as f64),
            ];
            Ok((g, y))
        };
        let mut train: Vec<_> = designs
            .train
            .iter()
            .map(to_sample)
            .collect::<Result<_, QorError>>()?;
        let mut val: Vec<_> = designs
            .val
            .iter()
            .map(to_sample)
            .collect::<Result<_, QorError>>()?;
        self.norm = Normalizer::fit(&train.iter().map(|(_, y)| y.clone()).collect::<Vec<_>>());
        for (_, y) in train.iter_mut().chain(val.iter_mut()) {
            self.norm.transform(y);
        }
        let cfg = TrainConfig {
            epochs: self.opts.epochs,
            batch_size: self.opts.batch_size,
            lr: self.opts.lr,
            seed: self.opts.seed,
            ..TrainConfig::default()
        };
        train_regression(&mut self.store, &self.model, &train, &val, &cfg);
        Ok(())
    }

    /// Predicts QoR for one configured design.
    pub fn predict(&self, func: &Function, cfg: &PragmaConfig) -> Qor {
        let g = self.graph_data(func, cfg);
        let out = self.model.predict(&self.store, &[&g]);
        let mut y = [out[(0, 0)], out[(0, 1)], out[(0, 2)], out[(0, 3)]];
        self.norm.inverse(&mut y);
        Qor {
            latency: expm1(y[0]).round() as u64,
            lut: expm1(y[1]).round() as u64,
            ff: expm1(y[2]).round() as u64,
            dsp: expm1(y[3]).round() as u64,
        }
    }

    /// MAPE against **post-route truth** on a design subset (Table IV
    /// protocol — even post-HLS-trained models are judged against the
    /// post-route reference).
    ///
    /// # Errors
    ///
    /// Returns [`QorError::UnknownKernel`] if a design references a kernel
    /// the dataset never registered.
    pub fn eval_against_post_route(
        &self,
        designs: &qor_core::LabeledDesigns,
        subset: &[qor_core::DesignSample],
    ) -> Result<GlobalEval, QorError> {
        let mut pred = vec![Vec::new(); 4];
        let mut truth = vec![Vec::new(); 4];
        for s in subset {
            let func = designs.function_of(s)?;
            let q = self.predict(func, &s.config);
            let t = s.report.top;
            let pa = [q.latency, q.lut, q.ff, q.dsp];
            let ta = [t.latency, t.lut, t.ff, t.dsp];
            for m in 0..4 {
                pred[m].push(pa[m] as f32);
                truth[m].push(ta[m] as f32);
            }
        }
        Ok(GlobalEval {
            latency_mape: gnn::mape(&pred[0], &truth[0]),
            lut_mape: gnn::mape(&pred[1], &truth[1]),
            ff_mape: gnn::mape(&pred[2], &truth[2]),
            dsp_mape: gnn::mape(&pred[3], &truth[3]),
            n: subset.len(),
        })
    }
}

fn log1p(v: f64) -> f32 {
    (v.max(0.0) + 1.0).ln() as f32
}

fn expm1(v: f32) -> f64 {
    (f64::from(v).exp() - 1.0).max(0.0)
}

/// Copies loop pragmas only, dropping array partitioning (what an HLS-IR
/// view without memory-bank modeling would expose).
fn strip_partitions(cfg: &PragmaConfig) -> PragmaConfig {
    let mut out = PragmaConfig::new();
    for (id, p) in cfg.loops() {
        out.set_pipeline(id.clone(), p.pipeline);
        out.set_unroll(id.clone(), p.unroll);
        out.set_flatten(id.clone(), p.flatten);
    }
    out
}

/// Aggregated pragma context of a node's innermost loop: whether any
/// enclosing loop is pipelined, and the product of enclosing unroll factors.
fn enclosing_pragmas(cfg: &PragmaConfig, loop_path: &LoopId) -> (bool, u64) {
    let mut pipelined = false;
    let mut unroll = 1u64;
    let path = loop_path.path();
    for depth in 1..=path.len() {
        let id = LoopId::from_path(&path[..depth]);
        let p = cfg.loop_pragma(&id);
        pipelined |= p.pipeline;
        unroll = unroll.saturating_mul(match p.unroll {
            pragma::Unroll::Off => 1,
            pragma::Unroll::Factor(f) => u64::from(f),
            pragma::Unroll::Full => 64,
        });
    }
    (pipelined, unroll)
}

/// The array a node touches, if any.
fn node_array<'a>(func: &'a Function, node: &'a cdfg::Node) -> Option<&'a str> {
    match &node.kind {
        cdfg::NodeKind::MemPort { array, .. } => Some(array.as_str()),
        cdfg::NodeKind::Instr { op: Some(id), .. } => match &func.op(*id).kind {
            hir::OpKind::Load { array, .. } | hir::OpKind::Store { array, .. } => {
                Some(array.as_str())
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qor_core::{dataset, DataOptions};

    fn tiny_designs() -> qor_core::LabeledDesigns {
        let ks: Vec<_> = kernels::training_kernels().take(2).collect();
        dataset::generate_for(
            &ks,
            &DataOptions {
                max_designs_per_kernel: 12,
                seed: 3,
            },
        )
        .unwrap()
    }

    #[test]
    fn pragma_blind_graphs_identical_across_configs() {
        let designs = tiny_designs();
        let baseline = FlatGnnBaseline::wu_accuracy(BaselineOptions::default());
        let s0 = &designs.train[0];
        let func = designs.function_of(s0).unwrap();
        let g_default = baseline.graph_data(func, &PragmaConfig::default());
        let g_cfg = baseline.graph_data(func, &s0.config);
        assert_eq!(g_default.num_nodes(), g_cfg.num_nodes());
        assert_eq!(g_default.x, g_cfg.x, "pragma-blind graphs must not vary");
    }

    #[test]
    fn hls_ir_fed_graphs_vary_with_configs() {
        let designs = tiny_designs();
        let baseline = FlatGnnBaseline::wu_dse(BaselineOptions::default());
        assert!(baseline.needs_hls());
        // find a config with unrolling: its graph must differ from default
        let varied = designs.train.iter().find(|s| {
            let func = designs.function_of(s).unwrap();
            let a = baseline.graph_data(func, &s.config);
            let b = baseline.graph_data(func, &PragmaConfig::default());
            a.num_nodes() != b.num_nodes()
        });
        assert!(varied.is_some(), "no config changed the structural graph");
    }

    #[test]
    fn gnn_dse_features_vary_with_configs() {
        let designs = tiny_designs();
        let baseline = FlatGnnBaseline::gnn_dse(BaselineOptions::default());
        let with_pragma = designs
            .train
            .iter()
            .find(|s| !s.config.is_trivial())
            .expect("some pragma'd design");
        let func = designs.function_of(with_pragma).unwrap();
        let a = baseline.graph_data(func, &with_pragma.config);
        let b = baseline.graph_data(func, &PragmaConfig::default());
        assert_eq!(a.num_nodes(), b.num_nodes(), "structure is pragma-blind");
        assert_ne!(a.x, b.x, "pragma features must differ");
    }

    #[test]
    fn baseline_trains_and_predicts() {
        let designs = tiny_designs();
        let mut baseline = FlatGnnBaseline::wu_dse(BaselineOptions {
            epochs: 5,
            ..BaselineOptions::default()
        });
        baseline.train(&designs).unwrap();
        let eval = baseline
            .eval_against_post_route(&designs, &designs.test)
            .unwrap();
        assert!(eval.latency_mape.is_finite());
        assert!(eval.n > 0);
    }
}
