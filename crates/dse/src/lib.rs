#![warn(missing_docs)]
//! Design-space exploration (paper §IV-D): Pareto frontiers, ADRS, the
//! model-guided explorer, and the two state-of-the-art baselines the paper
//! compares against.
//!
//! * [`ParetoFront`] / [`Adrs`] — exact and approximate Pareto sets over
//!   `(latency, area)` and the average distance from reference set.
//! * [`explore`] — evaluates a predictor over a design space, extracts the
//!   predicted Pareto set, and scores it (with simulated Vivado / HLS time
//!   accounting for the "DSE time" columns of Table V).
//! * [`explore_with_session`] — the same sweep through a caching
//!   [`qor_core::Session`], so the lowering and prepared front halves are
//!   paid once instead of per pragma point.
//! * [`FlatGnnBaseline`] — Wu et al. (DAC'22, \[8\]): a single whole-graph
//!   GNN without hierarchy. Pragma-blind for the accuracy comparison
//!   (Table IV) and HLS-IR-fed (pragma-transformed graphs, with per-design
//!   HLS time charged) for DSE (Table V), mirroring how that method is
//!   deployed.
//! * GNN-DSE (DAC'22, \[6\]) via [`FlatGnnBaseline::gnn_dse`] — flat graphs
//!   with pragmas as node *features* (not structure), trained on post-HLS
//!   (pre-route) labels.
//!
//! # Example
//!
//! ```
//! use dse::{Adrs, ParetoFront};
//!
//! // latency/area pairs; lower is better in both dimensions
//! let exact = vec![(10.0, 5.0), (20.0, 2.0), (30.0, 1.0)];
//! let front = ParetoFront::from_points(&exact);
//! assert_eq!(front.indices().len(), 3);
//! let adrs = Adrs::compute(&exact, &exact);
//! assert_eq!(adrs.percent(), 0.0);
//! ```

mod baseline;
mod explore;
mod pareto;

pub use baseline::{BaselineOptions, FlatGnnBaseline, LabelSpace};
pub use explore::{
    area, explore, explore_with_session, DsePoint, ExploreOutcome, HLS_SECS_PER_DESIGN,
};
pub use pareto::{Adrs, ParetoAccumulator, ParetoFront};
