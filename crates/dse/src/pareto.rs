//! Pareto frontiers and the average distance from reference set (ADRS).

/// A Pareto front over bi-objective points `(latency, area)`, both
/// minimized.
///
/// # Example
///
/// ```
/// use dse::ParetoFront;
/// let pts = vec![(1.0, 10.0), (2.0, 5.0), (3.0, 6.0)];
/// let front = ParetoFront::from_points(&pts);
/// assert_eq!(front.indices(), &[0, 1]); // (3,6) dominated by (2,5)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    indices: Vec<usize>,
    points: Vec<(f64, f64)>,
}

impl ParetoFront {
    /// Extracts the non-dominated subset of `points`.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        let mut indices = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let dominated = points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(*q, *p));
            if !dominated {
                indices.push(i);
            }
        }
        // drop exact duplicates, keeping the first occurrence
        let mut seen = Vec::new();
        indices.retain(|&i| {
            let p = points[i];
            if seen.contains(&p) {
                false
            } else {
                seen.push(p);
                true
            }
        });
        let kept = indices.iter().map(|&i| points[i]).collect();
        ParetoFront {
            indices,
            points: kept,
        }
    }

    /// Indices of the non-dominated points in the original slice.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The non-dominated points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the front is empty (only for empty input).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// `q` dominates `p`: no worse in both objectives, strictly better in one.
fn dominates(q: (f64, f64), p: (f64, f64)) -> bool {
    q.0 <= p.0 && q.1 <= p.1 && (q.0 < p.0 || q.1 < p.1)
}

/// Average distance from reference set (paper §IV-D):
///
/// `ADRS(Γ, Ω) = (1/|Γ|) Σ_{γ∈Γ} min_{ω∈Ω} f(γ, ω)` with
/// `f(γ, ω) = max(0, (lat_ω−lat_γ)/lat_γ, (area_ω−area_γ)/area_γ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adrs(f64);

impl Adrs {
    /// Computes ADRS of the approximate set `omega` against the exact
    /// Pareto-optimal set `gamma_source` (the exact front is extracted from
    /// it first).
    ///
    /// Returns zero for degenerate inputs (either set empty).
    pub fn compute(gamma_source: &[(f64, f64)], omega: &[(f64, f64)]) -> Self {
        let gamma = ParetoFront::from_points(gamma_source);
        if gamma.is_empty() || omega.is_empty() {
            return Adrs(0.0);
        }
        let mut total = 0.0;
        for g in gamma.points() {
            let best = omega
                .iter()
                .map(|w| distance(*g, *w))
                .fold(f64::INFINITY, f64::min);
            total += best;
        }
        Adrs(total / gamma.len() as f64)
    }

    /// ADRS as a fraction.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// ADRS in percent.
    pub fn percent(&self) -> f64 {
        self.0 * 100.0
    }
}

/// Pareto distance `f(γ, ω)`: the worst relative regression of `ω` w.r.t.
/// `γ`, floored at zero.
fn distance(gamma: (f64, f64), omega: (f64, f64)) -> f64 {
    let d_lat = (omega.0 - gamma.0) / gamma.0.max(1e-12);
    let d_area = (omega.1 - gamma.1) / gamma.1.max(1e-12);
    d_lat.max(d_area).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_drops_dominated_points() {
        let pts = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 5.0), (3.0, 1.0), (4.0, 4.0)];
        let f = ParetoFront::from_points(&pts);
        assert_eq!(f.indices(), &[0, 1, 3]);
    }

    #[test]
    fn duplicates_kept_once() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        let f = ParetoFront::from_points(&pts);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn adrs_zero_for_exact_set() {
        let pts = vec![(10.0, 3.0), (20.0, 1.0), (15.0, 2.0)];
        let adrs = Adrs::compute(&pts, &pts);
        assert_eq!(adrs.percent(), 0.0);
    }

    #[test]
    fn adrs_grows_with_distance() {
        let exact = vec![(10.0, 1.0)];
        let near = vec![(11.0, 1.0)];
        let far = vec![(20.0, 1.0)];
        let a_near = Adrs::compute(&exact, &near);
        let a_far = Adrs::compute(&exact, &far);
        assert!((a_near.percent() - 10.0).abs() < 1e-9);
        assert!((a_far.percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn adrs_uses_worst_objective() {
        let exact = vec![(10.0, 10.0)];
        // better latency but 50% worse area -> distance 0.5
        let approx = vec![(5.0, 15.0)];
        let adrs = Adrs::compute(&exact, &approx);
        assert!((adrs.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn adrs_superset_of_exact_front_is_zero() {
        let exact = vec![(10.0, 3.0), (20.0, 1.0)];
        let approx = vec![(10.0, 3.0), (20.0, 1.0), (50.0, 50.0)];
        assert_eq!(Adrs::compute(&exact, &approx).percent(), 0.0);
    }

    #[test]
    fn empty_inputs_are_degenerate_zero() {
        assert_eq!(Adrs::compute(&[], &[(1.0, 1.0)]).percent(), 0.0);
        assert_eq!(Adrs::compute(&[(1.0, 1.0)], &[]).percent(), 0.0);
    }
}
