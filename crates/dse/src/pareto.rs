//! Pareto frontiers and the average distance from reference set (ADRS).

/// A Pareto front over bi-objective points `(latency, area)`, both
/// minimized.
///
/// # Example
///
/// ```
/// use dse::ParetoFront;
/// let pts = vec![(1.0, 10.0), (2.0, 5.0), (3.0, 6.0)];
/// let front = ParetoFront::from_points(&pts);
/// assert_eq!(front.indices(), &[0, 1]); // (3,6) dominated by (2,5)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    indices: Vec<usize>,
    points: Vec<(f64, f64)>,
}

impl ParetoFront {
    /// Extracts the non-dominated subset of `points`.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        let mut acc = ParetoAccumulator::new();
        for (i, p) in points.iter().enumerate() {
            acc.push(i as u64, *p);
        }
        let indices = acc.entries().map(|(key, _)| *key as usize).collect();
        let kept = acc.entries().map(|(_, p)| *p).collect();
        ParetoFront {
            indices,
            points: kept,
        }
    }

    /// Indices of the non-dominated points in the original slice.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The non-dominated points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the front is empty (only for empty input).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// `q` dominates `p`: no worse in both objectives, strictly better in one.
fn dominates(q: (f64, f64), p: (f64, f64)) -> bool {
    q.0 <= p.0 && q.1 <= p.1 && (q.0 < p.0 || q.1 < p.1)
}

/// An incremental Pareto front: points arrive one at a time, each tagged
/// with a caller-chosen `u64` key (a slice index, a pragma fingerprint, …),
/// and the accumulator maintains the current non-dominated set.
///
/// This is the single home of the dominance logic: the exhaustive sweep's
/// [`ParetoFront::from_points`] replays a slice through it with indices as
/// keys, and the budgeted search engine in `crates/search` feeds it scored
/// candidates as they are evaluated. Surviving entries keep their insertion
/// order, so for index keys the front lists indices in ascending order —
/// exactly the order the batch extraction historically produced.
///
/// # Example
///
/// ```
/// use dse::ParetoAccumulator;
/// let mut acc = ParetoAccumulator::new();
/// assert!(acc.push(10, (2.0, 2.0)));
/// assert!(acc.push(11, (1.0, 1.0))); // dominates and evicts key 10
/// assert!(!acc.push(12, (3.0, 3.0))); // dominated: rejected
/// assert_eq!(acc.keys(), vec![11]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoAccumulator {
    entries: Vec<(u64, (f64, f64))>,
}

impl ParetoAccumulator {
    /// An empty front.
    pub fn new() -> Self {
        ParetoAccumulator::default()
    }

    /// Offers one point to the front.
    ///
    /// Returns `true` when the point joins the front (evicting any entries
    /// it dominates); `false` when it is dominated by — or exactly equal
    /// to — a current member. Ties (equal points) keep the first-seen key.
    pub fn push(&mut self, key: u64, point: (f64, f64)) -> bool {
        if self
            .entries
            .iter()
            .any(|(_, q)| dominates(*q, point) || *q == point)
        {
            return false;
        }
        self.entries.retain(|(_, q)| !dominates(point, *q));
        self.entries.push((key, point));
        true
    }

    /// Current front entries as `(key, point)` pairs, in insertion order of
    /// the surviving points.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, (f64, f64))> {
        self.entries.iter()
    }

    /// Keys of the current front, in insertion order.
    pub fn keys(&self) -> Vec<u64> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }

    /// Points of the current front, in insertion order.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.entries.iter().map(|(_, p)| *p).collect()
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty (nothing pushed yet).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Average distance from reference set (paper §IV-D):
///
/// `ADRS(Γ, Ω) = (1/|Γ|) Σ_{γ∈Γ} min_{ω∈Ω} f(γ, ω)` with
/// `f(γ, ω) = max(0, (lat_ω−lat_γ)/lat_γ, (area_ω−area_γ)/area_γ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adrs(f64);

impl Adrs {
    /// Computes ADRS of the approximate set `omega` against the exact
    /// Pareto-optimal set `gamma_source` (the exact front is extracted from
    /// it first).
    ///
    /// Returns zero for degenerate inputs (either set empty).
    pub fn compute(gamma_source: &[(f64, f64)], omega: &[(f64, f64)]) -> Self {
        let gamma = ParetoFront::from_points(gamma_source);
        if gamma.is_empty() || omega.is_empty() {
            return Adrs(0.0);
        }
        let mut total = 0.0;
        for g in gamma.points() {
            let best = omega
                .iter()
                .map(|w| distance(*g, *w))
                .fold(f64::INFINITY, f64::min);
            total += best;
        }
        Adrs(total / gamma.len() as f64)
    }

    /// ADRS as a fraction.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// ADRS in percent.
    pub fn percent(&self) -> f64 {
        self.0 * 100.0
    }
}

/// Pareto distance `f(γ, ω)`: the worst relative regression of `ω` w.r.t.
/// `γ`, floored at zero.
fn distance(gamma: (f64, f64), omega: (f64, f64)) -> f64 {
    let d_lat = (omega.0 - gamma.0) / gamma.0.max(1e-12);
    let d_area = (omega.1 - gamma.1) / gamma.1.max(1e-12);
    d_lat.max(d_area).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_drops_dominated_points() {
        let pts = vec![(1.0, 10.0), (2.0, 5.0), (2.5, 5.0), (3.0, 1.0), (4.0, 4.0)];
        let f = ParetoFront::from_points(&pts);
        assert_eq!(f.indices(), &[0, 1, 3]);
    }

    #[test]
    fn duplicates_kept_once() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        let f = ParetoFront::from_points(&pts);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn adrs_zero_for_exact_set() {
        let pts = vec![(10.0, 3.0), (20.0, 1.0), (15.0, 2.0)];
        let adrs = Adrs::compute(&pts, &pts);
        assert_eq!(adrs.percent(), 0.0);
    }

    #[test]
    fn adrs_grows_with_distance() {
        let exact = vec![(10.0, 1.0)];
        let near = vec![(11.0, 1.0)];
        let far = vec![(20.0, 1.0)];
        let a_near = Adrs::compute(&exact, &near);
        let a_far = Adrs::compute(&exact, &far);
        assert!((a_near.percent() - 10.0).abs() < 1e-9);
        assert!((a_far.percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn adrs_uses_worst_objective() {
        let exact = vec![(10.0, 10.0)];
        // better latency but 50% worse area -> distance 0.5
        let approx = vec![(5.0, 15.0)];
        let adrs = Adrs::compute(&exact, &approx);
        assert!((adrs.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn adrs_superset_of_exact_front_is_zero() {
        let exact = vec![(10.0, 3.0), (20.0, 1.0)];
        let approx = vec![(10.0, 3.0), (20.0, 1.0), (50.0, 50.0)];
        assert_eq!(Adrs::compute(&exact, &approx).percent(), 0.0);
    }

    #[test]
    fn empty_inputs_are_degenerate_zero() {
        assert_eq!(Adrs::compute(&[], &[(1.0, 1.0)]).percent(), 0.0);
        assert_eq!(Adrs::compute(&[(1.0, 1.0)], &[]).percent(), 0.0);
    }
}
