//! The model-guided DSE driver with tool-time accounting.

use std::time::Instant;

use hir::Function;
use hlsim::Qor;
use pragma::PragmaConfig;
use qor_core::{QorError, Session};

use crate::pareto::{Adrs, ParetoFront};

/// Simulated wall-clock cost of one HLS (synthesis-only) invocation, used
/// to account for baselines that need HLS in their inference loop
/// (Wu et al. \[8\] take "one to two days" for a ~2k-design space, i.e. tens
/// of seconds per design).
pub const HLS_SECS_PER_DESIGN: f64 = 45.0;

/// ZCU102 resource capacities used to collapse LUT/FF/DSP into one area
/// objective.
const LUT_CAP: f64 = 274_080.0;
const FF_CAP: f64 = 548_160.0;
const DSP_CAP: f64 = 2_520.0;

/// Normalized area objective of a QoR point.
pub fn area(q: &Qor) -> f64 {
    q.lut as f64 / LUT_CAP + q.ff as f64 / FF_CAP + q.dsp as f64 / DSP_CAP
}

/// One explored design point.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// The pragma configuration.
    pub config: PragmaConfig,
    /// Oracle QoR (exhaustive simulated tool flow).
    pub true_qor: Qor,
    /// Model-predicted QoR.
    pub predicted: Qor,
}

/// Outcome of one DSE run (one row of Table V).
///
/// Unlike the loose percentage the old `DseOutcome` carried, the Pareto
/// front and ADRS are returned as their typed forms so downstream code can
/// inspect the front's indices/points or convert the ADRS however it needs.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Kernel name.
    pub kernel: String,
    /// Number of design configurations.
    pub n_configs: usize,
    /// Simulated wall-clock of the exhaustive Vivado flow, in seconds.
    pub vivado_secs: f64,
    /// Wall-clock of the model-guided exploration (measured inference time
    /// plus any simulated HLS invocations the predictor requires).
    pub explore_secs: f64,
    /// The front the *predictor* considers Pareto-optimal (indices into
    /// [`ExploreOutcome::points`], point coordinates in predicted
    /// latency/area space).
    pub pareto: ParetoFront,
    /// ADRS of the predicted front scored at true QoR.
    pub adrs: Adrs,
    /// All explored points (for plotting / inspection).
    pub points: Vec<DsePoint>,
}

impl ExploreOutcome {
    /// ADRS of the predicted Pareto set, in percent.
    pub fn adrs_percent(&self) -> f64 {
        self.adrs.percent()
    }

    /// Simulated exhaustive tool time, in days.
    pub fn vivado_days(&self) -> f64 {
        self.vivado_secs / 86_400.0
    }

    /// Model-guided exploration time, in minutes.
    pub fn explore_minutes(&self) -> f64 {
        self.explore_secs / 60.0
    }
}

/// Runs model-guided DSE over `configs` of `func`.
///
/// The exact Pareto set comes from exhaustively evaluating the oracle; the
/// approximate set is the set of configurations the *predictor* considers
/// Pareto-optimal, scored at their true QoR (the standard ADRS protocol).
///
/// `hls_secs_per_design` charges simulated HLS time per design for
/// predictors that need the HLS flow in the loop (zero for source-level
/// predictors like the paper's).
///
/// # Errors
///
/// Propagates oracle evaluation failures.
pub fn explore(
    kernel: &str,
    func: &Function,
    configs: &[PragmaConfig],
    predict: impl Fn(&Function, &PragmaConfig) -> Qor + Sync,
    hls_secs_per_design: f64,
) -> Result<ExploreOutcome, QorError> {
    let sp = obs::span("dse_explore");
    sp.attr("kernel", kernel);
    sp.attr("configs", configs.len());

    let (mut points, vivado_secs) = oracle_sweep(func, configs)?;

    // model predictions (measured)
    let pred_sp = obs::span("dse_predict_sweep");
    let t0 = Instant::now();
    let predictions = par::map("dse/predict", configs, |_, config| predict(func, config));
    for (p, q) in points.iter_mut().zip(predictions) {
        p.predicted = q;
    }
    let inference_secs = t0.elapsed().as_secs_f64();
    obs::metrics::counter_add("dse/points_evaluated", points.len() as u64);
    if inference_secs > 0.0 {
        pred_sp.attr("points_per_sec", points.len() as f64 / inference_secs);
    }
    drop(pred_sp);
    let explore_secs = inference_secs + hls_secs_per_design * configs.len() as f64;

    let outcome = score(kernel, points, vivado_secs, explore_secs);
    sp.attr("adrs_percent", outcome.adrs_percent());
    Ok(outcome)
}

/// Runs model-guided DSE over `configs` of a bundled kernel through a
/// caching [`Session`].
///
/// Unlike [`explore`] with a bare `model.predict` closure — which re-runs
/// the lowering → CDFG → feature front half for every pragma point — the
/// session memoizes that front half, so sweeps that revisit configurations
/// (and the kernel lowering itself) pay it once. Check
/// [`Session::stats`] after the sweep to observe the hit rate.
///
/// # Errors
///
/// [`QorError::UnknownKernel`] for names outside the bundled set;
/// otherwise propagates oracle evaluation failures.
pub fn explore_with_session(
    session: &Session,
    kernel: &str,
    configs: &[PragmaConfig],
    hls_secs_per_design: f64,
) -> Result<ExploreOutcome, QorError> {
    let sp = obs::span("dse_explore_session");
    sp.attr("kernel", kernel);
    sp.attr("configs", configs.len());

    let func = session.kernel_function(kernel)?;
    let (mut points, vivado_secs) = oracle_sweep(&func, configs)?;

    let pred_sp = obs::span("dse_predict_sweep");
    let t0 = Instant::now();
    let predictions = par::try_map("dse/predict", configs, |_, config| {
        session.predict_kernel(kernel, config)
    })?;
    for (p, q) in points.iter_mut().zip(predictions) {
        p.predicted = q;
    }
    let inference_secs = t0.elapsed().as_secs_f64();
    obs::metrics::counter_add("dse/points_evaluated", points.len() as u64);
    if inference_secs > 0.0 {
        pred_sp.attr("points_per_sec", points.len() as f64 / inference_secs);
    }
    drop(pred_sp);
    let explore_secs = inference_secs + hls_secs_per_design * configs.len() as f64;

    let outcome = score(kernel, points, vivado_secs, explore_secs);
    sp.attr("adrs_percent", outcome.adrs_percent());
    Ok(outcome)
}

/// Exhaustive oracle sweep (the "Vivado" column). Tool seconds are summed
/// in config order after the parallel map so the total is bit-identical for
/// any worker count.
fn oracle_sweep(
    func: &Function,
    configs: &[PragmaConfig],
) -> Result<(Vec<DsePoint>, f64), QorError> {
    let _oracle = obs::span("dse_oracle_sweep");
    let reports = par::try_map("dse/oracle", configs, |_, config| {
        hlsim::evaluate(func, config).map_err(QorError::from)
    })?;
    let mut points = Vec::with_capacity(configs.len());
    let mut vivado_secs = 0.0;
    for (config, report) in configs.iter().zip(reports) {
        vivado_secs += hlsim::tool_runtime_secs(&report.top);
        points.push(DsePoint {
            config: config.clone(),
            true_qor: report.top,
            predicted: Qor::default(),
        });
    }
    Ok((points, vivado_secs))
}

/// Scores a fully-predicted sweep: the predicted Pareto set evaluated at
/// true QoR (the standard ADRS protocol), packaged as an outcome.
fn score(
    kernel: &str,
    points: Vec<DsePoint>,
    vivado_secs: f64,
    explore_secs: f64,
) -> ExploreOutcome {
    let true_pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.true_qor.latency as f64, area(&p.true_qor)))
        .collect();
    let pred_pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.predicted.latency as f64, area(&p.predicted)))
        .collect();
    let predicted_front = ParetoFront::from_points(&pred_pts);
    let approx_true: Vec<(f64, f64)> = predicted_front
        .indices()
        .iter()
        .map(|&i| true_pts[i])
        .collect();
    let adrs = Adrs::compute(&true_pts, &approx_true);
    obs::metrics::gauge_set(
        &format!("dse/{kernel}/pareto_front_size"),
        predicted_front.indices().len() as f64,
    );
    obs::metrics::gauge_set(&format!("dse/{kernel}/adrs_percent"), adrs.percent());

    ExploreOutcome {
        kernel: kernel.to_string(),
        n_configs: points.len(),
        vivado_secs,
        explore_secs,
        pareto: predicted_front,
        adrs,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_predictor_achieves_zero_adrs() {
        let func = kernels::lower_kernel("mvt").unwrap();
        let space = kernels::design_space(&func);
        let configs = space.enumerate_capped(24);
        let outcome = explore(
            "mvt",
            &func,
            &configs,
            |f, c| hlsim::evaluate(f, c).unwrap().top,
            0.0,
        )
        .unwrap();
        assert_eq!(outcome.n_configs, 24);
        assert_eq!(outcome.adrs_percent(), 0.0, "oracle must be exact");
        assert!(outcome.vivado_secs > outcome.explore_secs);
    }

    #[test]
    fn constant_predictor_scores_poorly() {
        let func = kernels::lower_kernel("mvt").unwrap();
        let space = kernels::design_space(&func);
        let configs = space.enumerate_capped(24);
        // worst case that still ranks: predict latency inversely related to
        // the true ordering by using the config fingerprint (garbage signal)
        let outcome = explore(
            "mvt",
            &func,
            &configs,
            |_f, c| Qor {
                latency: c.fingerprint() % 1_000 + 1,
                lut: (c.fingerprint() >> 10) % 10_000 + 1,
                ff: 100,
                dsp: 1,
            },
            0.0,
        )
        .unwrap();
        assert!(
            outcome.adrs_percent() > 1.0,
            "garbage predictor must have high ADRS, got {}",
            outcome.adrs_percent()
        );
    }

    #[test]
    fn hls_time_is_charged() {
        let func = kernels::lower_kernel("mvt").unwrap();
        let space = kernels::design_space(&func);
        let configs = space.enumerate_capped(10);
        let outcome = explore(
            "mvt",
            &func,
            &configs,
            |f, c| hlsim::evaluate(f, c).unwrap().top,
            HLS_SECS_PER_DESIGN,
        )
        .unwrap();
        assert!(outcome.explore_secs >= HLS_SECS_PER_DESIGN * 10.0);
    }

    #[test]
    fn session_sweep_matches_the_closure_path_and_reuses_the_lowering() {
        use qor_core::{HierarchicalModel, TrainOptions};

        let opts = TrainOptions::quick().with_hidden(10).with_seed(7);
        let func = kernels::lower_kernel("mvt").unwrap();
        let configs = kernels::design_space(&func).enumerate_capped(12);

        // closure path: re-lowers nothing but re-prepares every point
        let reference = HierarchicalModel::new(&opts);
        let baseline =
            explore("mvt", &func, &configs, |f, c| reference.predict(f, c), 0.0).unwrap();

        let session = Session::with_capacity(HierarchicalModel::new(&opts), 64);
        let cached = explore_with_session(&session, "mvt", &configs, 0.0).unwrap();

        assert_eq!(baseline.points.len(), cached.points.len());
        for (a, b) in baseline.points.iter().zip(&cached.points) {
            assert_eq!(a.predicted, b.predicted, "session prediction diverges");
            assert_eq!(a.true_qor, b.true_qor);
        }
        assert_eq!(baseline.adrs_percent(), cached.adrs_percent());

        // the kernel was lowered exactly once (the oracle's `kernel_function`
        // lookup misses; every per-point predict then hits); a second sweep
        // hits the prepared cache throughout
        let stats = session.stats();
        assert_eq!(stats.kernel_misses, 1);
        assert_eq!(stats.kernel_hits, configs.len() as u64);
        explore_with_session(&session, "mvt", &configs, 0.0).unwrap();
        let stats = session.stats();
        assert_eq!(
            stats.hits,
            configs.len() as u64,
            "second sweep must be all hits"
        );
    }

    #[test]
    fn session_sweep_rejects_unknown_kernels() {
        use qor_core::{HierarchicalModel, TrainOptions};
        let session = Session::new(HierarchicalModel::new(
            &TrainOptions::quick().with_hidden(8),
        ));
        let err = explore_with_session(&session, "no_such_kernel", &[], 0.0).unwrap_err();
        assert!(matches!(err, QorError::UnknownKernel(_)), "{err:?}");
    }

    #[test]
    fn area_composes_resource_utilizations() {
        let q = Qor {
            latency: 1,
            lut: 274_080,
            ff: 0,
            dsp: 0,
        };
        assert!((area(&q) - 1.0).abs() < 1e-9);
    }
}
