//! Hand-computed ADRS cases and seeded property tests tying the
//! incremental [`ParetoAccumulator`] to the batch
//! [`ParetoFront::from_points`] extraction.

use dse::{Adrs, ParetoAccumulator, ParetoFront};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn adrs_hand_computed_two_point_front() {
    // exact front: {(10,4), (20,2)}; approximate: {(12,4), (30,2)}
    //   gamma (10,4): min over omega of max(0, rel. regressions)
    //     vs (12,4): max(0.2, 0) = 0.2; vs (30,2): max(2.0, -0.5) = 2.0 → 0.2
    //   gamma (20,2): vs (12,4): max(-0.4, 1.0) = 1.0; vs (30,2): 0.5 → 0.5
    // ADRS = (0.2 + 0.5) / 2 = 0.35
    let gamma = [(10.0, 4.0), (20.0, 2.0)];
    let omega = [(12.0, 4.0), (30.0, 2.0)];
    let adrs = Adrs::compute(&gamma, &omega);
    assert!((adrs.value() - 0.35).abs() < 1e-12, "got {}", adrs.value());
    assert!((adrs.percent() - 35.0).abs() < 1e-9);
}

#[test]
fn adrs_front_equal_to_reference_is_exactly_zero() {
    let pts = [(10.0, 4.0), (20.0, 2.0), (15.0, 3.0)];
    assert_eq!(Adrs::compute(&pts, &pts).value(), 0.0);
    // the reference extraction drops dominated points, so a superset
    // reference with interior points scores the same
    let with_dominated = [(10.0, 4.0), (20.0, 2.0), (15.0, 3.0), (50.0, 50.0)];
    assert_eq!(Adrs::compute(&with_dominated, &pts).value(), 0.0);
}

#[test]
fn adrs_empty_sets_are_degenerate_zero() {
    assert_eq!(Adrs::compute(&[], &[]).value(), 0.0);
    assert_eq!(Adrs::compute(&[], &[(1.0, 1.0)]).value(), 0.0);
    assert_eq!(Adrs::compute(&[(1.0, 1.0)], &[]).value(), 0.0);
}

#[test]
fn adrs_single_gamma_picks_the_nearest_omega() {
    let gamma = [(100.0, 1.0)];
    let omega = [(110.0, 1.0), (200.0, 0.5), (100.0, 3.0)];
    // distances: 0.1, max(1.0, -0.5)=1.0, max(0, 2.0)=2.0 → min 0.1
    let adrs = Adrs::compute(&gamma, &omega);
    assert!((adrs.value() - 0.1).abs() < 1e-12);
}

/// Random point clouds on a small integer grid (so duplicates and exact
/// dominance ties are likely): replaying through the accumulator must
/// reproduce the batch extraction exactly — same indices, same points,
/// same order.
#[test]
fn accumulator_matches_batch_extraction_on_random_clouds() {
    let mut rng = StdRng::seed_from_u64(2024);
    for case in 0..200 {
        let n = rng.gen_range(0..40usize);
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0..8u32) as f64, rng.gen_range(0..8u32) as f64))
            .collect();

        let front = ParetoFront::from_points(&points);
        let mut acc = ParetoAccumulator::new();
        for (i, p) in points.iter().enumerate() {
            acc.push(i as u64, *p);
        }

        let acc_indices: Vec<usize> = acc.keys().iter().map(|&k| k as usize).collect();
        assert_eq!(
            acc_indices,
            front.indices(),
            "case {case}: indices diverge for {points:?}"
        );
        assert_eq!(
            acc.points(),
            front.points(),
            "case {case}: points diverge for {points:?}"
        );
        assert_eq!(acc.len(), front.len());
        assert_eq!(acc.is_empty(), front.is_empty());

        // front invariants: mutually non-dominated, and every input point
        // is dominated-or-equal by some front member
        let fp = acc.points();
        for (i, a) in fp.iter().enumerate() {
            for (j, b) in fp.iter().enumerate() {
                if i != j {
                    let dominates = a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1);
                    assert!(!dominates, "case {case}: front not minimal");
                }
            }
        }
        for p in &points {
            assert!(
                fp.iter().any(|f| f.0 <= p.0 && f.1 <= p.1),
                "case {case}: {p:?} not covered by the front"
            );
        }
    }
}

#[test]
fn accumulator_push_reports_membership_and_clear_resets() {
    let mut acc = ParetoAccumulator::new();
    assert!(acc.push(1, (5.0, 5.0)));
    assert!(!acc.push(2, (5.0, 5.0)), "exact duplicate must be rejected");
    assert!(!acc.push(3, (6.0, 5.0)), "dominated point must be rejected");
    assert!(acc.push(4, (1.0, 9.0)), "incomparable point must join");
    assert!(acc.push(5, (0.5, 0.5)), "dominating point must evict");
    assert_eq!(acc.keys(), vec![5]);
    acc.clear();
    assert!(acc.is_empty());
    assert!(acc.push(6, (9.0, 9.0)), "cleared front accepts anything");
}
