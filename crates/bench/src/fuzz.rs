//! Crash-free fuzz gate over the source-to-prediction pipeline.
//!
//! Drives `frontc` → `hir` → `cdfg` → features → GNN predict
//! ([`qor_core::Session::predict_source`]) over thousands of seeded
//! programs — legal ones from [`kernels::synthetic_corpus`] and damaged
//! ones from [`kernels::corrupted_corpus`] — and asserts the pipeline's
//! crash-freedom invariant: **every input yields a typed [`QorError`] or a
//! clean prediction, never a panic**.
//!
//! Every program runs inside `catch_unwind` with a fresh zero-capacity
//! session (so a hypothetical panic cannot poison a shared cache lock and
//! cascade). Verdicts are classified into a small fixed kind set, folded
//! into an FNV-1a digest in seed order, and counted both in the returned
//! report and in `obs` metrics (`fuzz/ok`, `fuzz/typed_error`,
//! `fuzz/panic`). Seed order is independent of `QOR_THREADS`, so the
//! digest is byte-identical at any worker count — the CI determinism gate
//! compares two runs at `QOR_THREADS=1` and `QOR_THREADS=4`.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use obs::Json;
use pragma::PragmaConfig;
use qor_core::{fnv1a, HierarchicalModel, QorError, Session, TrainOptions};

/// How many programs of each population to run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// Legal programs from the grammar-driven generator.
    pub legal: u64,
    /// Corrupted programs from the mutational corruptor.
    pub corrupted: u64,
    /// First seed (programs use `base_seed..base_seed + count`).
    pub base_seed: u64,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            legal: 1_400,
            corrupted: 700,
            base_seed: 0,
        }
    }
}

impl FuzzOptions {
    /// The CI smoke scale: small enough to run in seconds.
    pub fn smoke() -> Self {
        FuzzOptions {
            legal: 300,
            corrupted: 150,
            base_seed: 0,
        }
    }

    /// The env-gated long-haul scale.
    pub fn long() -> Self {
        FuzzOptions {
            legal: 6_000,
            corrupted: 3_000,
            base_seed: 0,
        }
    }
}

/// What one program did to the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Generator seed of the program.
    pub seed: u64,
    /// Whether the program went through the corruptor first.
    pub corrupted: bool,
    /// Verdict kind: `ok`, `parse`, `sema`, `lower`, `eval`,
    /// `unknown_top`, `other` — or `panic`.
    pub kind: &'static str,
    /// The captured panic payload, only for `kind == "panic"`.
    pub panic_msg: Option<String>,
}

/// Outcome of a whole fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Options the run used.
    pub opts: FuzzOptions,
    /// Per-program outcomes, in seed order (legal first, then corrupted).
    pub outcomes: Vec<Outcome>,
    /// Wall-clock seconds of the run.
    pub elapsed_secs: f64,
}

impl FuzzReport {
    /// Outcomes that panicked (the gate requires this to be empty).
    pub fn panics(&self) -> Vec<&Outcome> {
        self.outcomes.iter().filter(|o| o.kind == "panic").collect()
    }

    /// Verdict-kind histogram over `(population, kind)`.
    pub fn histogram(&self) -> BTreeMap<(&'static str, &'static str), u64> {
        let mut h = BTreeMap::new();
        for o in &self.outcomes {
            let pop = if o.corrupted { "corrupted" } else { "legal" };
            *h.entry((pop, o.kind)).or_insert(0) += 1;
        }
        h
    }

    /// FNV-1a digest over `seed:population:kind` lines in seed order.
    ///
    /// Thread-count independent: the underlying `par::map` preserves input
    /// order, so two runs with the same options digest identically
    /// regardless of `QOR_THREADS`.
    pub fn digest(&self) -> u64 {
        let mut lines = String::new();
        for o in &self.outcomes {
            lines.push_str(&format!(
                "{}:{}:{}\n",
                o.seed,
                if o.corrupted { "c" } else { "l" },
                o.kind
            ));
        }
        fnv1a(lines.as_bytes())
    }

    /// The run as a JSON document. With `timings: false` every
    /// wall-clock-dependent field is nulled so two runs compare
    /// byte-identical (the CI determinism gate).
    pub fn to_json(&self, timings: bool) -> Json {
        let total = self.outcomes.len() as u64;
        let panics = self.panics().len() as u64;
        let ok = self.outcomes.iter().filter(|o| o.kind == "ok").count() as u64;
        let hist: Vec<Json> = self
            .histogram()
            .into_iter()
            .map(|((pop, kind), n)| {
                Json::obj(vec![
                    ("population", Json::str(pop)),
                    ("kind", Json::str(kind)),
                    ("count", Json::UInt(n)),
                ])
            })
            .collect();
        let (elapsed, rate) = if timings {
            (
                Json::Float(self.elapsed_secs),
                Json::Float(total as f64 / self.elapsed_secs.max(1e-9)),
            )
        } else {
            (Json::Null, Json::Null)
        };
        Json::obj(vec![
            ("legal", Json::UInt(self.opts.legal)),
            ("corrupted", Json::UInt(self.opts.corrupted)),
            ("base_seed", Json::UInt(self.opts.base_seed)),
            ("programs", Json::UInt(total)),
            ("ok", Json::UInt(ok)),
            ("typed_errors", Json::UInt(total - ok - panics)),
            ("panics", Json::UInt(panics)),
            ("verdicts", Json::Arr(hist)),
            (
                "verdict_digest",
                Json::str(format!("{:016x}", self.digest())),
            ),
            ("elapsed_secs", elapsed),
            ("programs_per_sec", rate),
        ])
    }
}

/// Classifies a pipeline result into a stable verdict kind.
fn classify(result: &Result<hlsim::Qor, QorError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(QorError::Parse(frontc::FrontError::Parse(_))) => "parse",
        Err(QorError::Parse(frontc::FrontError::Sema(_))) => "sema",
        Err(QorError::Lower(_)) => "lower",
        Err(QorError::Eval(_)) => "eval",
        Err(QorError::UnknownKernel(_)) => "unknown_top",
        Err(_) => "other",
    }
}

/// Renders a panic payload (the `&str`/`String` cases panics carry).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one program through generation + the full pipeline under
/// `catch_unwind`, classifying the result.
fn run_one(seed: u64, corrupted: bool) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        // generation and corruption are inside the guard: a generator
        // panic is as much a gate failure as a pipeline panic
        let source = if corrupted {
            kernels::corrupted_kernel(seed)
        } else {
            kernels::synthetic_kernel(seed)
        };
        let top = format!("synth{seed}");
        // fresh model + zero-capacity session per program: deterministic
        // weights, no cross-program cache state, no lock to poison
        let opts = TrainOptions::quick().with_hidden(8).with_epochs(1);
        let session = Session::with_capacity(HierarchicalModel::new(&opts), 0);
        classify(&session.predict_source(&top, &source, &PragmaConfig::default()))
    }));
    match result {
        Ok(kind) => {
            obs::metrics::counter_add(
                if kind == "ok" {
                    "fuzz/ok"
                } else {
                    "fuzz/typed_error"
                },
                1,
            );
            Outcome {
                seed,
                corrupted,
                kind,
                panic_msg: None,
            }
        }
        Err(payload) => {
            obs::metrics::counter_add("fuzz/panic", 1);
            Outcome {
                seed,
                corrupted,
                kind: "panic",
                panic_msg: Some(panic_message(&*payload)),
            }
        }
    }
}

/// Runs the fuzz gate: `opts.legal` legal programs then `opts.corrupted`
/// corrupted ones, in parallel, preserving seed order in the report.
///
/// The default panic hook is silenced for the duration of the run so a
/// caught panic does not spray backtraces over the report; the captured
/// payload ends up in [`Outcome::panic_msg`] instead.
pub fn run(opts: &FuzzOptions) -> FuzzReport {
    let sp = obs::span("fuzz_run");
    sp.attr("legal", opts.legal);
    sp.attr("corrupted", opts.corrupted);
    let jobs: Vec<(u64, bool)> = (0..opts.legal)
        .map(|i| (opts.base_seed + i, false))
        .chain((0..opts.corrupted).map(|i| (opts.base_seed + i, true)))
        .collect();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let t = std::time::Instant::now();
    let outcomes = par::map("fuzz", &jobs, |_, &(seed, corrupted)| {
        run_one(seed, corrupted)
    });
    let elapsed_secs = t.elapsed().as_secs_f64();
    std::panic::set_hook(prev_hook);
    FuzzReport {
        opts: *opts,
        outcomes,
        elapsed_secs,
    }
}

/// Syntactic shape statistics over the legal corpus, for `EXPERIMENTS.md`
/// and the fuzz report: how much of the grammar the generated population
/// actually exercises.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Programs inspected.
    pub programs: u64,
    /// Total source bytes.
    pub bytes: u64,
    /// Total `for` loops.
    pub loops: u64,
    /// Programs with a 2-level (or deeper) nest.
    pub two_level: u64,
    /// Programs with a 3-level nest.
    pub three_level: u64,
    /// Total `#pragma HLS` directives.
    pub pragmas: u64,
    /// Programs with at least one conditional.
    pub conditionals: u64,
    /// Programs with at least one integer array.
    pub int_arrays: u64,
}

impl CorpusStats {
    /// Gathers stats over `synthetic_corpus(count, base_seed)`.
    pub fn gather(count: u64, base_seed: u64) -> CorpusStats {
        let mut s = CorpusStats::default();
        for (_, src) in kernels::synthetic_corpus(count as usize, base_seed) {
            s.programs += 1;
            s.bytes += src.len() as u64;
            s.loops += src.matches("for (").count() as u64;
            if src.contains("for (int j") || src.contains("for (int c") {
                s.two_level += 1;
            }
            if src.contains("for (int k") {
                s.three_level += 1;
            }
            s.pragmas += src.matches("#pragma HLS").count() as u64;
            if src.contains("if (") {
                s.conditionals += 1;
            }
            if src.contains("int a") {
                s.int_arrays += 1;
            }
        }
        s
    }

    /// The stats as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("programs", Json::UInt(self.programs)),
            ("bytes", Json::UInt(self.bytes)),
            ("loops", Json::UInt(self.loops)),
            ("two_level", Json::UInt(self.two_level)),
            ("three_level", Json::UInt(self.three_level)),
            ("pragmas", Json::UInt(self.pragmas)),
            ("conditionals", Json::UInt(self.conditionals)),
            ("int_arrays", Json::UInt(self.int_arrays)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_panic_free_and_deterministic() {
        let opts = FuzzOptions {
            legal: 40,
            corrupted: 20,
            base_seed: 0,
        };
        let a = run(&opts);
        assert!(a.panics().is_empty(), "panics: {:?}", a.panics());
        assert_eq!(a.outcomes.len(), 60);
        let b = run(&opts);
        assert_eq!(a.digest(), b.digest());
        // legal programs must overwhelmingly predict cleanly
        let legal_ok = a
            .outcomes
            .iter()
            .filter(|o| !o.corrupted && o.kind == "ok")
            .count();
        assert_eq!(legal_ok, 40, "legal programs must all succeed");
    }

    #[test]
    fn digest_is_thread_count_independent() {
        let opts = FuzzOptions {
            legal: 24,
            corrupted: 12,
            base_seed: 5,
        };
        par::set_threads(Some(1));
        let one = run(&opts);
        par::set_threads(Some(4));
        let four = run(&opts);
        par::set_threads(None);
        assert_eq!(one.digest(), four.digest());
        assert_eq!(
            one.to_json(false).to_string(),
            four.to_json(false).to_string()
        );
    }

    #[test]
    fn corrupted_population_produces_typed_errors() {
        let report = run(&FuzzOptions {
            legal: 0,
            corrupted: 50,
            base_seed: 0,
        });
        assert!(report.panics().is_empty(), "{:?}", report.panics());
        let errors = report
            .outcomes
            .iter()
            .filter(|o| o.kind != "ok" && o.kind != "panic")
            .count();
        assert!(errors >= 25, "only {errors}/50 typed errors");
    }

    #[test]
    fn corpus_stats_cover_the_grammar() {
        let s = CorpusStats::gather(120, 0);
        assert_eq!(s.programs, 120);
        assert!(s.two_level > 0, "no nested loops in corpus");
        assert!(s.three_level > 0, "no 3-level nests in corpus");
        assert!(s.pragmas > 0, "no pragmas in corpus");
        assert!(s.conditionals > 0, "no conditionals in corpus");
        assert!(s.int_arrays > 0, "no integer arrays in corpus");
    }
}
