//! A small self-calibrating micro-benchmark harness.
//!
//! Replaces the criterion dependency (unavailable in the offline build
//! environment) for the `[[bench]]` targets: it warms up, picks an
//! iteration count so each sample runs for a few milliseconds, collects a
//! fixed number of samples and reports min/median/mean nanoseconds per
//! iteration. Results are also recorded in the `obs` run report (table
//! `bench/<suite>`) when `QOR_REPORT` is set.

use std::time::{Duration, Instant};

use obs::Json;

/// Target wall-clock per sample after calibration.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Rough wall-clock budget per benchmark.
const BENCH_BUDGET: Duration = Duration::from_millis(1500);
/// Sample count bounds.
const MIN_SAMPLES: usize = 5;
const MAX_SAMPLES: usize = 30;

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
    /// Minimum over samples.
    pub min_ns: f64,
    /// Median over samples.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

impl BenchResult {
    fn from_samples(name: &str, iters: u64, mut per_iter_ns: Vec<f64>) -> BenchResult {
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len();
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        BenchResult {
            name: name.to_string(),
            samples: n,
            iters,
            min_ns: per_iter_ns.first().copied().unwrap_or(0.0),
            median_ns: median,
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
        }
    }

    /// One aligned human-readable line.
    pub fn line(&self) -> String {
        format!(
            "{:<36} {:>14}   (min {}, {} samples x {} iters)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            self.samples,
            self.iters,
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times `f`, auto-calibrating iterations per sample; prints one line.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
    // warmup + calibration
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(20));
    let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let per_sample = once * iters as u32;
    let samples = ((BENCH_BUDGET.as_nanos() / per_sample.as_nanos().max(1)) as usize)
        .clamp(MIN_SAMPLES, MAX_SAMPLES);

    let mut per_iter_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    let result = BenchResult::from_samples(name, iters, per_iter_ns);
    println!("{}", result.line());
    result
}

/// Like [`bench`], but runs `setup` outside the timed region before every
/// timed call — for workloads that consume their input (criterion's
/// `iter_batched`).
pub fn bench_batched<S>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S),
) -> BenchResult {
    // one warmup round
    f(setup());
    let mut per_iter_ns = Vec::with_capacity(MIN_SAMPLES * 2);
    let budget = Instant::now();
    while per_iter_ns.len() < MAX_SAMPLES
        && (per_iter_ns.len() < MIN_SAMPLES || budget.elapsed() < BENCH_BUDGET)
    {
        let state = setup();
        let t = Instant::now();
        f(state);
        per_iter_ns.push(t.elapsed().as_nanos() as f64);
    }
    let result = BenchResult::from_samples(name, 1, per_iter_ns);
    println!("{}", result.line());
    result
}

/// Records a finished suite into the `obs` run report.
pub fn record_suite(suite: &str, results: &[BenchResult]) {
    obs::report::record_table(
        &format!("bench/{suite}"),
        &["name", "median_ns", "min_ns", "mean_ns", "samples", "iters"],
        results
            .iter()
            .map(|r| {
                vec![
                    Json::str(r.name.clone()),
                    Json::Float(r.median_ns),
                    Json::Float(r.min_ns),
                    Json::Float(r.mean_ns),
                    Json::UInt(r.samples as u64),
                    Json::UInt(r.iters),
                ]
            })
            .collect(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let mut hits = 0u64;
        let r = bench("noop", || hits += 1);
        assert!(r.samples >= MIN_SAMPLES);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.mean_ns * 2.0);
        assert!(hits > r.iters, "closure must actually run");
    }

    #[test]
    fn batched_excludes_setup() {
        let r = bench_batched(
            "sleepless",
            || std::thread::sleep(std::time::Duration::from_millis(1)),
            |()| {},
        );
        // setup sleeps 1ms per sample; the timed body is ~ns
        assert!(r.median_ns < 500_000.0, "setup leaked into timing: {r:?}");
    }

    #[test]
    fn median_of_even_sample_count() {
        let r = BenchResult::from_samples("m", 1, vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(r.median_ns, 2.5);
        assert_eq!(r.min_ns, 1.0);
    }
}
