//! `qor` — command-line interface to the full prediction stack.
//!
//! ```text
//! qor parse    <file.c>                       front-end + HIR summary
//! qor graph    <file.c> [--dot out.dot]       pragma-aware CDFG (uses in-source pragmas)
//! qor estimate <file.c>                       oracle QoR (simulated tool flow)
//! qor sweep    <file.c|kernel>                exhaustive Pareto sweep
//! qor train    --out <dir> [--paper]          train the hierarchical model, save it
//! qor predict  <file.c> --model <dir>         source-to-post-route prediction
//! ```
//!
//! Files are HLS-C; bare names resolve against the bundled kernel suite.

use std::process::ExitCode;

use qor_core::{HierarchicalModel, TrainOptions};

fn main() -> ExitCode {
    let _obs = obs::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("parse") => cmd_parse(&args[1..]),
        Some("graph") => cmd_graph(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        _ => {
            eprintln!("usage: qor <parse|graph|estimate|sweep|train|predict> ...");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Loads a function from a file path or a bundled kernel name.
fn load_function(spec: &str) -> Result<hir::Function, Box<dyn std::error::Error>> {
    if let Some(src) = kernels::kernel_source(spec) {
        let module = hir::lower(&frontc::parse(src)?)?;
        return Ok(module
            .function(spec)
            .expect("bundled kernel defines its function")
            .clone());
    }
    let src = std::fs::read_to_string(spec)
        .map_err(|e| format!("cannot read {spec:?} (and no bundled kernel has that name): {e}"))?;
    let program = frontc::parse(&src)?;
    let module = hir::lower(&program)?;
    module
        .functions
        .into_iter()
        .next()
        .ok_or_else(|| "no functions in input".into())
}

fn value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Option<&str> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = !matches!(a.as_str(), "--paper" | "--quick");
            continue;
        }
        return Some(a);
    }
    None
}

fn cmd_parse(args: &[String]) -> CliResult {
    let spec = positional(args).ok_or("usage: qor parse <file.c|kernel>")?;
    let func = load_function(spec)?;
    println!("{func}");
    println!("arrays:");
    for a in &func.arrays {
        println!("  {} : {:?} {:?}", a.name, a.elem, a.dims);
    }
    let cfg = &func.source_pragmas;
    if !cfg.is_trivial() {
        println!("in-source pragmas:");
        for (id, p) in cfg.loops() {
            println!(
                "  {id}: pipeline={} unroll={:?} flatten={}",
                p.pipeline, p.unroll, p.flatten
            );
        }
    }
    Ok(())
}

fn cmd_graph(args: &[String]) -> CliResult {
    let spec = positional(args).ok_or("usage: qor graph <file.c|kernel> [--dot out.dot]")?;
    let func = load_function(spec)?;
    let cfg = func.source_pragmas.clone();
    let graph = cdfg::GraphBuilder::new(&func, &cfg).build();
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for n in &graph.nodes {
        *counts.entry(n.mnemonic).or_insert(0) += 1;
    }
    for (m, c) in counts {
        println!("  {m:<8} x{c}");
    }
    if let Some(path) = value_of(args, "--dot") {
        std::fs::write(path, graph.to_dot(&func.name))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_estimate(args: &[String]) -> CliResult {
    let spec = positional(args).ok_or("usage: qor estimate <file.c|kernel>")?;
    let func = load_function(spec)?;
    let cfg = func.source_pragmas.clone();
    let report = hlsim::evaluate(&func, &cfg)?;
    println!("oracle QoR for {} (with in-source pragmas):", func.name);
    println!("  latency : {:>10} cycles", report.top.latency);
    println!("  LUT     : {:>10}", report.top.lut);
    println!("  FF      : {:>10}", report.top.ff);
    println!("  DSP     : {:>10}", report.top.dsp);
    println!(
        "  est. tool flow time: {:.1} min",
        hlsim::tool_runtime_secs(&report.top) / 60.0
    );
    obs::report::record_table(
        "estimate",
        &["kernel", "latency_cycles", "lut", "ff", "dsp"],
        vec![vec![
            obs::Json::str(func.name.clone()),
            obs::Json::UInt(report.top.latency),
            obs::Json::UInt(report.top.lut),
            obs::Json::UInt(report.top.ff),
            obs::Json::UInt(report.top.dsp),
        ]],
    );
    for (id, lq) in &report.loops {
        println!(
            "  loop {id}: IL={} II={} TC={} {}",
            lq.il,
            lq.ii,
            lq.trip_count,
            if lq.pipelined { "(pipelined)" } else { "" }
        );
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let spec = positional(args).ok_or("usage: qor sweep <file.c|kernel>")?;
    let func = load_function(spec)?;
    let space = kernels::design_space(&func);
    let configs = space.enumerate();
    println!("{}: {} configurations", func.name, configs.len());
    let mut pts = Vec::new();
    for cfg in &configs {
        let q = hlsim::evaluate(&func, cfg)?.top;
        pts.push((q.latency as f64, dse::area(&q)));
    }
    let front = dse::ParetoFront::from_points(&pts);
    let mut rows: Vec<(u64, f64)> = front.points().iter().map(|&(l, a)| (l as u64, a)).collect();
    rows.sort_by_key(|r| r.0);
    println!("Pareto frontier ({} designs):", rows.len());
    obs::report::record_table(
        "sweep_pareto",
        &["latency_cycles", "area"],
        rows.iter()
            .map(|&(lat, area)| vec![obs::Json::UInt(lat), obs::Json::Float(area)])
            .collect(),
    );
    for (lat, area) in rows {
        println!("  {lat:>10} cycles   area {area:.4}");
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> CliResult {
    let out = value_of(args, "--out").ok_or("usage: qor train --out <dir> [--paper]")?;
    let opts = if args.iter().any(|a| a == "--paper") {
        TrainOptions::paper()
    } else {
        TrainOptions::quick()
    };
    obs::tracef!(
        1,
        "training hierarchical model on the bundled kernel suite..."
    );
    let (model, stats) = HierarchicalModel::train_on_kernels(&opts)?;
    println!(
        "test MAPE: GNN_p lat {:.2}% | GNN_np lat {:.2}% | GNN_g lat {:.2}% LUT {:.2}% FF {:.2}% DSP {:.2}%",
        stats.pipelined.latency_mape,
        stats.non_pipelined.latency_mape,
        stats.global.latency_mape,
        stats.global.lut_mape,
        stats.global.ff_mape,
        stats.global.dsp_mape,
    );
    model.save(out)?;
    println!("model saved to {out}");
    Ok(())
}

fn cmd_predict(args: &[String]) -> CliResult {
    let spec = positional(args).ok_or("usage: qor predict <file.c|kernel> --model <dir>")?;
    let dir = value_of(args, "--model").ok_or("missing --model <dir>")?;
    let func = load_function(spec)?;
    let opts = if args.iter().any(|a| a == "--paper") {
        TrainOptions::paper()
    } else {
        TrainOptions::quick()
    };
    let mut model = HierarchicalModel::new(&opts);
    model.load(dir)?;
    let cfg = func.source_pragmas.clone();
    let q = model.predict(&func, &cfg);
    println!(
        "predicted post-route QoR for {} (no tool flow run):",
        func.name
    );
    println!("  latency : {:>10} cycles", q.latency);
    println!("  LUT     : {:>10}", q.lut);
    println!("  FF      : {:>10}", q.ff);
    println!("  DSP     : {:>10}", q.dsp);
    // reference, since we have the oracle handy
    let truth = hlsim::evaluate(&func, &cfg)?.top;
    println!(
        "oracle (for reference): {} cycles, {} LUT, {} FF, {} DSP",
        truth.latency, truth.lut, truth.ff, truth.dsp
    );
    obs::report::record_table(
        "predict",
        &["source", "latency_cycles", "lut", "ff", "dsp"],
        vec![
            vec![
                obs::Json::str("predicted"),
                obs::Json::UInt(q.latency),
                obs::Json::UInt(q.lut),
                obs::Json::UInt(q.ff),
                obs::Json::UInt(q.dsp),
            ],
            vec![
                obs::Json::str("oracle"),
                obs::Json::UInt(truth.latency),
                obs::Json::UInt(truth.lut),
                obs::Json::UInt(truth.ff),
                obs::Json::UInt(truth.dsp),
            ],
        ],
    );
    Ok(())
}
