//! Serving-latency SLO benchmark: drives a live in-process `qor-serve`
//! over real TCP and reports p50/p90/p99 request latency and throughput
//! for `POST /v1/predict`.
//!
//! The workload cycles a deterministic set of pragma configurations over
//! one bundled kernel, so a fixed fraction of requests hits the prepared
//! cache — the measured distribution covers both the cached fast path and
//! the full lower→prepare→infer path.
//!
//! Two modes:
//!
//! * **full** (default) — `--clients` concurrent connections issue
//!   `--requests` requests total; the measured latency table is printed
//!   and **appended** to the `BENCH_serve.json` trajectory (see
//!   [`qor_bench::trajectory`]; runs accumulate instead of overwriting).
//! * **`--smoke`** — single sequential client; each appended entry
//!   carries only the deterministic workload fields (`"measured": null`),
//!   so runs against a fresh `--out` file are **byte-identical** at any
//!   `QOR_THREADS` — the CI determinism gate `cmp`s two runs.
//!
//! Either way the JSON records a `workload_fnv` checksum over the
//! predicted QoR values in request order: any nondeterminism in the
//! serving path (batching, caching, thread count) changes the checksum.
//!
//! Usage: `cargo run --release -p qor-bench --bin serve_latency --
//!         [--requests N] [--clients N] [--kernel NAME] [--smoke]
//!         [--out FILE]`

use std::time::Instant;

use obs::Json;
use qor_bench::{row, trajectory};
use qor_core::{fnv1a, HierarchicalModel, Session, TrainOptions};
use serve::http::client_request;
use serve::{json, Server};

struct Args {
    requests: usize,
    clients: usize,
    kernel: String,
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 400,
        clients: 4,
        kernel: "mvt".to_string(),
        smoke: false,
        out: "BENCH_serve.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--requests" => {
                i += 1;
                args.requests = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(400);
            }
            "--clients" => {
                i += 1;
                args.clients = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&c| c >= 1)
                    .unwrap_or(4);
            }
            "--kernel" => {
                i += 1;
                args.kernel = argv.get(i).cloned().unwrap_or_else(|| "mvt".to_string());
            }
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| "BENCH_serve.json".to_string());
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        // smoke is the determinism gate: small, sequential, fixed shape
        args.requests = args.requests.min(64);
        args.clients = 1;
    }
    args
}

/// The deterministic request bodies: a short cycle of configurations so
/// repeats hit the prepared cache while fresh ones pay the full path.
fn workload(kernel: &str, n: usize) -> Vec<String> {
    let configs = [
        r#"{}"#,
        r#"{"loops":[{"loop":[0],"pipeline":true}]}"#,
        r#"{"loops":[{"loop":[0],"unroll":2}]}"#,
        r#"{"loops":[{"loop":[0],"pipeline":true,"unroll":4}]}"#,
    ];
    (0..n)
        .map(|i| {
            format!(
                r#"{{"kernel":"{kernel}","config":{}}}"#,
                configs[i % configs.len()]
            )
        })
        .collect()
}

/// Sends one request; returns `(latency_us, qor-tuple line for the
/// checksum)`.
fn send_one(addr: std::net::SocketAddr, body: &str) -> Result<(u64, String), String> {
    let t0 = Instant::now();
    let (status, response) =
        client_request(addr, "POST", "/v1/predict", Some(body)).map_err(|e| format!("io: {e}"))?;
    let us = t0.elapsed().as_micros() as u64;
    if status != 200 {
        return Err(format!("status {status}: {response}"));
    }
    let doc = json::parse(&response).map_err(|e| format!("response: {e}"))?;
    let q = json::field(&doc, "qor").ok_or_else(|| format!("no qor in {response}"))?;
    let get = |k: &str| {
        json::field(q, k)
            .and_then(json::as_u64)
            .ok_or_else(|| format!("no qor.{k} in {response}"))
    };
    Ok((
        us,
        format!(
            "{},{},{},{}",
            get("latency")?,
            get("lut")?,
            get("ff")?,
            get("dsp")?
        ),
    ))
}

/// Per-client result share: (global request index, latency µs, qor line).
type ClientShare = Vec<(usize, u64, String)>;

/// Nearest-rank percentile over a sorted sample.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let args = parse_args();

    let opts = TrainOptions::quick().with_hidden(12).with_seed(4);
    let model = HierarchicalModel::new(&opts);
    let handle = Server::bind("127.0.0.1:0", Session::with_capacity(model, 64))?.spawn()?;
    let addr = handle.addr();

    let bodies = workload(&args.kernel, args.requests);
    let wall = Instant::now();
    // each client takes a strided share; request order within a client is
    // deterministic, and the checksum folds results in global order
    let mut latencies_us: Vec<u64> = Vec::with_capacity(args.requests);
    let mut qor_lines: Vec<String> = vec![String::new(); args.requests];
    if args.clients <= 1 {
        for (i, body) in bodies.iter().enumerate() {
            let (us, line) = send_one(addr, body).map_err(|e| format!("request {i}: {e}"))?;
            latencies_us.push(us);
            qor_lines[i] = line;
        }
    } else {
        let results: Vec<Result<ClientShare, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|c| {
                    let bodies = &bodies;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for i in (c..bodies.len()).step_by(args.clients) {
                            let (us, line) = send_one(addr, &bodies[i])
                                .map_err(|e| format!("request {i}: {e}"))?;
                            out.push((i, us, line));
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for chunk in results {
            for (i, us, line) in chunk? {
                latencies_us.push(us);
                qor_lines[i] = line;
            }
        }
    }
    let wall_ms = wall.elapsed().as_micros() as f64 / 1_000.0;
    let stats = handle.stats();
    handle.shutdown();

    // checksum over predicted QoR values in request order — independent of
    // timing, thread count and interleaving
    let workload_fnv = fnv1a(qor_lines.join("\n").as_bytes());

    latencies_us.sort_unstable();
    let p50 = percentile(&latencies_us, 0.50);
    let p90 = percentile(&latencies_us, 0.90);
    let p99 = percentile(&latencies_us, 0.99);
    let throughput = args.requests as f64 / (wall_ms / 1_000.0);

    let widths = [8usize, 8, 10, 10, 10, 12];
    println!(
        "\nServing latency ({} requests, {} client{}, kernel {})\n",
        args.requests,
        args.clients,
        if args.clients == 1 { "" } else { "s" },
        args.kernel
    );
    println!(
        "{}",
        row(
            &[
                "Route".into(),
                "Count".into(),
                "p50 (us)".into(),
                "p90 (us)".into(),
                "p99 (us)".into(),
                "req/s".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "predict".into(),
                args.requests.to_string(),
                p50.to_string(),
                p90.to_string(),
                p99.to_string(),
                format!("{throughput:.0}"),
            ],
            &widths
        )
    );
    println!(
        "\ncache: {} hits / {} misses (hit rate {:.0}%)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    println!("workload checksum: {workload_fnv:016x}");

    obs::report::record_table(
        "serve_latency",
        &["route", "requests", "p50_us", "p90_us", "p99_us", "rps"],
        vec![vec![
            Json::str("predict"),
            Json::UInt(args.requests as u64),
            Json::UInt(p50),
            Json::UInt(p90),
            Json::UInt(p99),
            Json::Float(throughput),
        ]],
    );

    // smoke runs null out every measured (timing-dependent) field so the
    // file is byte-identical across repeated runs at any QOR_THREADS
    let measured = if args.smoke {
        Json::Null
    } else {
        Json::obj(vec![
            ("p50_us", Json::UInt(p50)),
            ("p90_us", Json::UInt(p90)),
            ("p99_us", Json::UInt(p99)),
            (
                "wall_ms",
                Json::Float((wall_ms * 1_000.0).round() / 1_000.0),
            ),
            ("throughput_rps", Json::Float(throughput.round())),
        ])
    };
    let entry = Json::obj(vec![
        ("bench", Json::str("serve_latency")),
        ("kernel", Json::str(&args.kernel)),
        ("requests", Json::UInt(args.requests as u64)),
        ("clients", Json::UInt(args.clients as u64)),
        ("smoke", Json::Bool(args.smoke)),
        ("workload_fnv", Json::Str(format!("{workload_fnv:016x}"))),
        ("measured", measured),
    ]);
    let total = trajectory::append(
        std::path::Path::new(&args.out),
        trajectory::SERVE_SCHEMA,
        &entry,
    )?;
    println!("appended to {} ({total} entries)", args.out);
    Ok(())
}
