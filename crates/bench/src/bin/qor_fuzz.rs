//! `qor-fuzz` — the crash-free fuzz gate (see [`qor_bench::fuzz`]).
//!
//! Runs seeded legal programs from the grammar-driven generator plus
//! corrupted variants from the mutational corruptor through the full
//! `frontc` → `hir` → `cdfg` → features → predict pipeline and fails
//! (exit 1) if **any** input panics instead of producing a typed error or
//! a clean prediction. Prints a JSON report to stdout (or `--out FILE`)
//! with the verdict histogram, an order-stable FNV-1a verdict digest and
//! corpus-shape statistics.
//!
//! Scales:
//! * `--smoke`   — 300 legal + 150 corrupted; every timing field is
//!   nulled, so two smoke runs with the same seed are byte-identical at
//!   any `QOR_THREADS` (the CI determinism gate).
//! * default     — 1400 legal + 700 corrupted (≥ 2000 programs, the CI
//!   crash-freedom gate).
//! * `--long`    — 6000 legal + 3000 corrupted (env-gated in CI via
//!   `QOR_FUZZ_LONG=1`).
//!
//! Usage: `cargo run --release -p qor-bench --bin qor-fuzz --
//!         [--smoke | --long] [--legal N] [--corrupted N] [--seed N]
//!         [--out FILE]`

use obs::Json;
use qor_bench::fuzz::{run, CorpusStats, FuzzOptions};

struct Args {
    opts: FuzzOptions,
    timings: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut opts = FuzzOptions::default();
    let mut timings = true;
    let mut out = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                let base_seed = opts.base_seed;
                opts = FuzzOptions::smoke();
                opts.base_seed = base_seed;
                timings = false;
            }
            "--long" => {
                let base_seed = opts.base_seed;
                opts = FuzzOptions::long();
                opts.base_seed = base_seed;
            }
            "--legal" => opts.legal = value(&mut i).parse().expect("--legal N"),
            "--corrupted" => opts.corrupted = value(&mut i).parse().expect("--corrupted N"),
            "--seed" => opts.base_seed = value(&mut i).parse().expect("--seed N"),
            "--out" => out = Some(value(&mut i)),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { opts, timings, out }
}

fn main() {
    let _obs = obs::init();
    let args = parse_args();
    obs::tracef!(
        1,
        "qor-fuzz: {} legal + {} corrupted programs from seed {}",
        args.opts.legal,
        args.opts.corrupted,
        args.opts.base_seed
    );
    let report = run(&args.opts);
    let corpus = CorpusStats::gather(args.opts.legal, args.opts.base_seed);

    let mut doc = report.to_json(args.timings);
    if let Json::Obj(ref mut fields) = doc {
        fields.push(("corpus".to_string(), corpus.to_json()));
    }
    let rendered = format!("{doc}\n");
    match &args.out {
        Some(path) => std::fs::write(path, &rendered).expect("write --out file"),
        None => print!("{rendered}"),
    }

    // mirror the verdict histogram into the QOR_REPORT run report, like
    // the table bins mirror their printed tables
    let rows = report
        .histogram()
        .into_iter()
        .map(|((population, kind), count)| {
            vec![Json::str(population), Json::str(kind), Json::UInt(count)]
        })
        .collect();
    obs::report::record_table("fuzz_verdicts", &["population", "kind", "count"], rows);

    let panics = report.panics();
    if panics.is_empty() {
        obs::tracef!(
            1,
            "qor-fuzz: {} programs, 0 panics, digest {:016x}",
            report.outcomes.len(),
            report.digest()
        );
    } else {
        eprintln!("qor-fuzz: {} PANICS:", panics.len());
        for p in panics.iter().take(10) {
            eprintln!(
                "  seed {} ({}) panicked: {}",
                p.seed,
                if p.corrupted { "corrupted" } else { "legal" },
                p.panic_msg.as_deref().unwrap_or("?")
            );
            eprintln!(
                "  reproduce: qor-fuzz --legal {} --corrupted {} --seed {}",
                u64::from(!p.corrupted),
                u64::from(p.corrupted),
                p.seed
            );
        }
        std::process::exit(1);
    }
}
