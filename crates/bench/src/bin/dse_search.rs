//! Heuristic vs exhaustive DSE: runs every `crates/search` strategy at a
//! 25% evaluation budget against the exhaustively-swept reference front
//! and reports ADRS per kernel.
//!
//! Both sides score designs with the same analytic QoR oracle (`hlsim`),
//! so the table isolates the *search* quality: how close each heuristic
//! gets to the true Pareto front while evaluating a quarter of the space.
//! Runs are seed-deterministic; re-running reproduces the table exactly.
//!
//! Usage: `cargo run --release -p qor-bench --bin dse_search`

use std::sync::Arc;

use obs::Json;
use qor_bench::row;
use qor_core::QorError;
use search::{OracleEval, SearchOptions, SearchRun, StrategyKind};

const KERNELS: [&str; 4] = ["fir", "bicg", "mvt", "symm"];
const UNROLL_FACTORS: [u32; 3] = [1, 2, 4];
const SEED: u64 = 42;
const BATCH: usize = 8;

fn exhaustive_points(func: &hir::Function, factors: &[u32]) -> Result<Vec<(f64, f64)>, QorError> {
    let mut space = kernels::design_space(func);
    space.unroll_factors = factors.to_vec();
    let configs = space.enumerate();
    let reports = par::try_map("bench/dse_search/oracle", &configs, |_, c| {
        hlsim::evaluate(func, c).map_err(QorError::from)
    })?;
    Ok(reports
        .iter()
        .map(|r| (r.top.latency as f64, dse::area(&r.top)))
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();

    let widths = [8usize, 8, 9, 7, 6, 6, 8];
    println!("\nHeuristic vs exhaustive DSE (seed {SEED}, 25% budget)\n");
    println!(
        "{}",
        row(
            &[
                "Kernel".into(),
                "#Config".into(),
                "Strategy".into(),
                "Budget".into(),
                "Evals".into(),
                "Front".into(),
                "ADRS".into(),
            ],
            &widths
        )
    );

    let mut report_rows: Vec<Vec<Json>> = Vec::new();
    for kernel in KERNELS {
        let func = Arc::new(kernels::lower_kernel(kernel)?);
        let all = exhaustive_points(&func, &UNROLL_FACTORS)?;
        let exact_front = dse::ParetoFront::from_points(&all);
        let budget = ((all.len() as u64) / 4).max(1);

        for strategy in StrategyKind::all() {
            let opts = SearchOptions::new(kernel, strategy, budget)
                .with_seed(SEED)
                .with_batch(BATCH)
                .with_unroll_factors(UNROLL_FACTORS.to_vec());
            let mut run = SearchRun::for_kernel(opts)?;
            let outcome = run.run(&OracleEval::new(Arc::clone(&func)))?;
            let adrs = dse::Adrs::compute(&all, &run.front_points());

            println!(
                "{}",
                row(
                    &[
                        kernel.into(),
                        format!("{}", all.len()),
                        strategy.name().into(),
                        format!("{budget}"),
                        format!("{}", outcome.spent),
                        format!("{}/{}", outcome.front.len(), exact_front.len()),
                        format!("{:.2}%", adrs.percent()),
                    ],
                    &widths
                )
            );
            report_rows.push(vec![
                Json::str(kernel),
                Json::UInt(all.len() as u64),
                Json::str(strategy.name()),
                Json::UInt(budget),
                Json::UInt(outcome.spent),
                Json::UInt(outcome.front.len() as u64),
                Json::Float(adrs.percent()),
            ]);
        }
    }
    obs::report::record_table(
        "dse_search",
        &[
            "kernel",
            "n_configs",
            "strategy",
            "budget",
            "evals",
            "front_size",
            "adrs_percent",
        ],
        report_rows,
    );
    Ok(())
}
