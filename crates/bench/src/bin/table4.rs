//! Regenerates **Table IV**: comparison of prediction error (MAPE) against
//! Wu et al. (DAC'22, \[8\]).
//!
//! * **w/o pragma** — a synthetic corpus in the style of \[8\]'s dataset
//!   (random DFGs / simple loops, no pragmas). Both methods should be
//!   comparably accurate.
//! * **w/ pragma** — the full pragma-swept dataset. \[8\]'s graphs do not
//!   model pragmas, so its error explodes; the hierarchical pragma-aware
//!   method stays accurate.
//!
//! Usage: `cargo run --release -p qor-bench --bin table4 [--paper]`

use dse::FlatGnnBaseline;
use obs::Json;
use qor_bench::{pct, row, Cli, Scale};
use qor_core::HierarchicalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let cli = Cli::parse();
    let opts = cli.train_options();

    // ---- w/o pragma: synthetic corpus, default configuration only
    let corpus_size = match cli.scale {
        Scale::Quick => 120,
        Scale::Paper => 400,
    };
    obs::tracef!(
        1,
        "building synthetic pragma-free corpus ({corpus_size} programs)..."
    );
    let mut pairs = Vec::new();
    for (name, src) in kernels::synthetic_corpus(corpus_size, 9000) {
        let module = hir::lower(&frontc::parse(&src)?)?;
        let func = module.function(&name).expect("generated function").clone();
        pairs.push((name, func, vec![pragma::PragmaConfig::default()]));
    }
    let plain = qor_core::generate_from_functions(pairs, &opts.data)?;

    obs::tracef!(1, "training ours on the pragma-free corpus...");
    let (_ours_plain, ours_plain_stats) = HierarchicalModel::train_with_designs(&opts, &plain)?;
    obs::tracef!(1, "training [8] on the pragma-free corpus...");
    let mut wu_plain = FlatGnnBaseline::wu_accuracy(cli.baseline_options());
    wu_plain.train(&plain)?;
    let wu_plain_eval = wu_plain.eval_against_post_route(&plain, &plain.test)?;

    // ---- w/ pragma: the standard swept dataset
    obs::tracef!(1, "generating pragma-swept dataset...");
    let swept = qor_core::generate(&opts.data)?;
    obs::tracef!(1, "training ours on the pragma dataset...");
    let (_ours, ours_stats) = HierarchicalModel::train_with_designs(&opts, &swept)?;
    obs::tracef!(
        1,
        "training [8] on the pragma dataset (pragma-blind graphs)..."
    );
    let mut wu = FlatGnnBaseline::wu_accuracy(cli.baseline_options());
    wu.train(&swept)?;
    let wu_eval = wu.eval_against_post_route(&swept, &swept.test)?;

    let widths = [8usize, 14, 9, 8, 8, 8];
    println!("\nTable IV: Comparison of prediction error (MAPE)\n");
    println!(
        "{}",
        row(
            &[
                "Method".into(),
                "Configuration".into(),
                "Latency".into(),
                "DSP".into(),
                "LUT".into(),
                "FF".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "[8]".into(),
                "w/o pragma".into(),
                "N/A".into(),
                pct(wu_plain_eval.dsp_mape),
                pct(wu_plain_eval.lut_mape),
                pct(wu_plain_eval.ff_mape),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "Ours".into(),
                "w/o pragma".into(),
                pct(ours_plain_stats.global.latency_mape),
                pct(ours_plain_stats.global.dsp_mape),
                pct(ours_plain_stats.global.lut_mape),
                pct(ours_plain_stats.global.ff_mape),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "[8]".into(),
                "w/ pragma".into(),
                pct(wu_eval.latency_mape),
                pct(wu_eval.dsp_mape),
                pct(wu_eval.lut_mape),
                pct(wu_eval.ff_mape),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "Ours".into(),
                "w/ pragma".into(),
                pct(ours_stats.global.latency_mape),
                pct(ours_stats.global.dsp_mape),
                pct(ours_stats.global.lut_mape),
                pct(ours_stats.global.ff_mape),
            ],
            &widths
        )
    );
    obs::report::record_table(
        "table4",
        &[
            "method",
            "configuration",
            "latency_mape",
            "dsp_mape",
            "lut_mape",
            "ff_mape",
        ],
        vec![
            vec![
                Json::str("[8]"),
                Json::str("w/o pragma"),
                Json::Null,
                Json::from(wu_plain_eval.dsp_mape),
                Json::from(wu_plain_eval.lut_mape),
                Json::from(wu_plain_eval.ff_mape),
            ],
            vec![
                Json::str("ours"),
                Json::str("w/o pragma"),
                Json::from(ours_plain_stats.global.latency_mape),
                Json::from(ours_plain_stats.global.dsp_mape),
                Json::from(ours_plain_stats.global.lut_mape),
                Json::from(ours_plain_stats.global.ff_mape),
            ],
            vec![
                Json::str("[8]"),
                Json::str("w/ pragma"),
                Json::from(wu_eval.latency_mape),
                Json::from(wu_eval.dsp_mape),
                Json::from(wu_eval.lut_mape),
                Json::from(wu_eval.ff_mape),
            ],
            vec![
                Json::str("ours"),
                Json::str("w/ pragma"),
                Json::from(ours_stats.global.latency_mape),
                Json::from(ours_stats.global.dsp_mape),
                Json::from(ours_stats.global.lut_mape),
                Json::from(ours_stats.global.ff_mape),
            ],
        ],
    );
    Ok(())
}
