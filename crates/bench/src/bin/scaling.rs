//! Measures `QOR_THREADS=1` vs `QOR_THREADS=N` wall-clock for the three
//! parallel stages (dataset generation, hierarchical training, DSE), and
//! asserts the determinism contract along the way: every stage must produce
//! identical results at both worker counts.
//!
//! `N` defaults to [`std::thread::available_parallelism`] and can be raised
//! with `--threads N` to measure oversubscription on small machines.
//!
//! Usage: `cargo run --release -p qor-bench --bin scaling [--threads N]
//! [--designs N] [--epochs N]`

use std::time::Instant;

use obs::Json;
use qor_bench::{row, Cli};
use qor_core::{dataset, HierarchicalModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let cli = Cli::parse();
    let opts = cli.train_options();

    let workers = cli.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(2)
    });

    let kernels: Vec<_> = kernels::training_kernels().collect();
    let mut rows: Vec<Vec<Json>> = Vec::new();
    let widths = [10usize, 14, 14, 9];
    println!("\nScaling: wall-clock per stage, 1 vs {workers} workers\n");
    println!(
        "{}",
        row(
            &[
                "Stage".into(),
                "1 thread (s)".into(),
                format!("{workers} threads (s)"),
                "Speedup".into(),
            ],
            &widths
        )
    );

    // stage 1: dataset generation (parallel hlsim sweeps)
    let gen = |threads| {
        par::set_threads(Some(threads));
        let t0 = Instant::now();
        let designs = dataset::generate_for(&kernels, &opts.data).expect("dataset");
        (t0.elapsed().as_secs_f64(), designs)
    };
    let (gen_1, designs_1) = gen(1);
    let (gen_n, designs_n) = gen(workers);
    assert_eq!(designs_1.len(), designs_n.len());
    for (a, b) in designs_1.train.iter().zip(&designs_n.train) {
        assert_eq!(a.report, b.report, "dataset labels must not vary");
    }

    // stage 2: hierarchical training (parallel micro-batch backward)
    let fit = |threads| {
        par::set_threads(Some(threads));
        let t0 = Instant::now();
        let (_, stats) =
            HierarchicalModel::train_with_designs(&opts, &designs_1).expect("training");
        (t0.elapsed().as_secs_f64(), stats)
    };
    let (fit_1, stats_1) = fit(1);
    let (fit_n, stats_n) = fit(workers);
    assert_eq!(stats_1, stats_n, "training stats must not vary");

    // stage 3: DSE (parallel oracle + predict sweeps)
    let func = kernels::lower_kernel("mvt")?;
    let configs = kernels::design_space(&func).enumerate_capped(cli.dse_cap().max(1));
    let sweep = |threads| {
        par::set_threads(Some(threads));
        let t0 = Instant::now();
        let out = dse::explore(
            "mvt",
            &func,
            &configs,
            |f, c| hlsim::evaluate(f, c).expect("oracle").top,
            0.0,
        )
        .expect("explore");
        (t0.elapsed().as_secs_f64(), out)
    };
    let (dse_1, out_1) = sweep(1);
    let (dse_n, out_n) = sweep(workers);
    assert_eq!(out_1.pareto.indices(), out_n.pareto.indices());
    assert_eq!(
        out_1.adrs.value().to_bits(),
        out_n.adrs.value().to_bits(),
        "ADRS must be bit-identical"
    );
    par::set_threads(None);

    for (stage, t1, tn) in [
        ("dataset", gen_1, gen_n),
        ("training", fit_1, fit_n),
        ("dse", dse_1, dse_n),
    ] {
        let speedup = t1 / tn.max(1e-9);
        println!(
            "{}",
            row(
                &[
                    stage.into(),
                    format!("{t1:.2}"),
                    format!("{tn:.2}"),
                    format!("{speedup:.2}x"),
                ],
                &widths
            )
        );
        rows.push(vec![
            Json::str(stage),
            Json::UInt(workers as u64),
            Json::Float(t1),
            Json::Float(tn),
            Json::Float(speedup),
        ]);
    }
    obs::report::record_table(
        "scaling",
        &[
            "stage",
            "threads",
            "secs_1_thread",
            "secs_n_threads",
            "speedup",
        ],
        rows,
    );
    println!("\ndeterminism: all three stages identical at 1 and {workers} workers");
    Ok(())
}
