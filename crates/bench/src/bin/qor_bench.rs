//! `qor-bench` — open-loop load generator for the `/v1/predict` serving
//! path, comparing **per-request dispatch** (`--no-batch` baseline) against
//! the **cross-request batching queue** on the same workload.
//!
//! The workload is a duplicate-heavy thundering herd: every round, all
//! `--clients` connections fire simultaneously (a `Barrier` releases the
//! burst regardless of what the server is doing — open-loop within the
//! round), and each request carries `--dup` copies of that round's
//! *previously unseen* pragma configuration. Per-request dispatch pays the
//! full lower→prepare→infer pipeline for every copy on every connection;
//! the batching queue coalesces the burst and single-flights the
//! duplicates, so one computation serves the whole round.
//!
//! Each mode runs against a fresh server with a cold cache and identical
//! model weights, so the predicted QoR stream must be **bit-identical**
//! between modes (the run fails otherwise) — the speedup is measured on
//! provably equal work.
//!
//! Results are printed as a p50/p90/p99 + throughput table and appended to
//! the `BENCH_serve.json` trajectory (`qor_bench::trajectory`). With
//! `--smoke`, counts shrink and every timing-dependent field is nulled so
//! runs against a fresh `--out` are byte-identical at any `QOR_THREADS` —
//! the CI determinism gate.
//!
//! Usage: `cargo run --release -p qor-bench --bin qor-bench --
//!         [--rounds N] [--clients N] [--dup N] [--kernel NAME]
//!         [--batch-wait-us N] [--smoke] [--out FILE]`
//!
//! The `incr_sweep` subcommand instead measures the incremental query
//! engine on pragma-neighbor sweeps (see [`qor_bench::incr_sweep`]):
//! `qor-bench incr_sweep [--steps N] [--breadth N] [--kernels N]
//! [--smoke] [--out FILE]`, appending to `BENCH_incr.json`.
//!
//! The `fleet_scaling` subcommand measures distributed-DSE throughput at
//! 1/2/4 HTTP workers (see [`qor_bench::fleet_scaling`]): `qor-bench
//! fleet_scaling [--kernel NAME] [--budget N] [--batch N] [--hidden N]
//! [--smoke] [--out FILE]`, appending to `BENCH_fleet.json`.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use obs::Json;
use qor_bench::{row, trajectory};
use qor_core::{fnv1a, HierarchicalModel, TrainOptions};
use serve::http::client_request;
use serve::{json, BatchOptions, DispatchMode, ModelRegistry, Server, ServerConfig};

struct Args {
    rounds: usize,
    clients: usize,
    dup: usize,
    kernel: String,
    batch_wait_us: u64,
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut args = Args {
        rounds: 20,
        clients: 8,
        dup: cores.max(8),
        kernel: "mvt".to_string(),
        batch_wait_us: 1000,
        smoke: false,
        out: "BENCH_serve.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let uint = |argv: &[String], i: usize, default: usize| {
            argv.get(i)
                .and_then(|v| v.parse().ok())
                .filter(|&v: &usize| v >= 1)
                .unwrap_or(default)
        };
        match argv[i].as_str() {
            "--rounds" => {
                i += 1;
                args.rounds = uint(&argv, i, args.rounds);
            }
            "--clients" => {
                i += 1;
                args.clients = uint(&argv, i, args.clients);
            }
            "--dup" => {
                i += 1;
                args.dup = uint(&argv, i, args.dup);
            }
            "--kernel" => {
                i += 1;
                args.kernel = argv.get(i).cloned().unwrap_or_else(|| "mvt".to_string());
            }
            "--batch-wait-us" => {
                i += 1;
                args.batch_wait_us = uint(&argv, i, args.batch_wait_us as usize) as u64;
            }
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| "BENCH_serve.json".to_string());
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        // smoke is the determinism gate: small and machine-independent
        args.rounds = args.rounds.min(4);
        args.clients = args.clients.min(3);
        args.dup = 4;
    }
    args
}

/// One previously-unseen configuration per round, so every burst starts
/// cold: distinct unroll factors walk a fresh region of the pragma space.
fn round_config(round: usize) -> String {
    let factor = 2 + round as u64;
    if round.is_multiple_of(2) {
        format!(r#"{{"loops":[{{"loop":[0],"unroll":{factor}}}]}}"#)
    } else {
        format!(r#"{{"loops":[{{"loop":[0],"pipeline":true,"unroll":{factor}}}]}}"#)
    }
}

fn request_body(kernel: &str, round: usize, dup: usize) -> String {
    let item = format!(
        r#"{{"kernel":"{kernel}","config":{}}}"#,
        round_config(round)
    );
    let items: Vec<String> = (0..dup).map(|_| item.clone()).collect();
    format!(r#"{{"requests":[{}]}}"#, items.join(","))
}

/// Sends one multi-item request; returns `(latency_us, per-item qor lines
/// in item order)`.
fn send_one(
    addr: std::net::SocketAddr,
    body: &str,
    dup: usize,
) -> Result<(u64, Vec<String>), String> {
    let t0 = Instant::now();
    let (status, response) =
        client_request(addr, "POST", "/v1/predict", Some(body)).map_err(|e| format!("io: {e}"))?;
    let us = t0.elapsed().as_micros() as u64;
    if status != 200 {
        return Err(format!("status {status}: {response}"));
    }
    let doc = json::parse(&response).map_err(|e| format!("response: {e}"))?;
    let results = json::field(&doc, "results")
        .and_then(json::as_array)
        .ok_or_else(|| format!("no results in {response}"))?;
    if results.len() != dup {
        return Err(format!(
            "{} results for {dup} items: {response}",
            results.len()
        ));
    }
    let mut lines = Vec::with_capacity(dup);
    for item in results {
        let q = json::field(item, "qor").ok_or_else(|| format!("item without qor: {response}"))?;
        let get = |k: &str| {
            json::field(q, k)
                .and_then(json::as_u64)
                .ok_or_else(|| format!("no qor.{k} in {response}"))
        };
        lines.push(format!(
            "{},{},{},{}",
            get("latency")?,
            get("lut")?,
            get("ff")?,
            get("dsp")?
        ));
    }
    Ok((us, lines))
}

struct ModeResult {
    latencies_us: Vec<u64>,
    wall: Duration,
    workload_fnv: u64,
}

/// Runs the full burst workload against a fresh server using `dispatch`.
fn run_mode(args: &Args, dispatch: DispatchMode) -> Result<ModeResult, String> {
    // identical weights per mode; a fresh registry means a cold cache
    let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(4));
    let registry = Arc::new(ModelRegistry::with_default(model, 256));
    let handle = Server::bind_with(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            dispatch,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?
    .spawn()
    .map_err(|e| format!("spawn: {e}"))?;
    let addr = handle.addr();
    let bodies: Vec<String> = (0..args.rounds)
        .map(|r| request_body(&args.kernel, r, args.dup))
        .collect();

    let barrier = Barrier::new(args.clients);
    let wall = Instant::now();
    // (round, client, latency, qor lines) from every request
    type Sample = (usize, usize, u64, Vec<String>);
    let shares: Vec<Result<Vec<Sample>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let bodies = &bodies;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(bodies.len());
                    for (r, body) in bodies.iter().enumerate() {
                        // open the loop: the whole herd fires at once
                        barrier.wait();
                        let (us, lines) = send_one(addr, body, args.dup)
                            .map_err(|e| format!("client {c} round {r}: {e}"))?;
                        out.push((r, c, us, lines));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = wall.elapsed();
    handle.shutdown();

    let mut samples: Vec<Sample> = Vec::with_capacity(args.clients * args.rounds);
    for share in shares {
        samples.extend(share?);
    }
    // checksum in (round, client, item) order — independent of timing
    samples.sort_by_key(|&(r, c, _, _)| (r, c));
    let stream: Vec<String> = samples
        .iter()
        .flat_map(|(_, _, _, lines)| lines.iter().cloned())
        .collect();
    let workload_fnv = fnv1a(stream.join("\n").as_bytes());
    let mut latencies_us: Vec<u64> = samples.iter().map(|&(_, _, us, _)| us).collect();
    latencies_us.sort_unstable();
    Ok(ModeResult {
        latencies_us,
        wall,
        workload_fnv,
    })
}

/// Nearest-rank percentile over a sorted sample.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("incr_sweep") {
        let code = qor_bench::incr_sweep::run(&argv[1..])?;
        std::process::exit(code);
    }
    if argv.first().map(String::as_str) == Some("fleet_scaling") {
        let code = qor_bench::fleet_scaling::run(&argv[1..])?;
        std::process::exit(code);
    }
    let args = parse_args();
    let requests = args.rounds * args.clients;
    let predictions = requests * args.dup;
    println!(
        "qor-bench: {} rounds x {} clients x {} duplicate items (= {} predictions), kernel {}",
        args.rounds, args.clients, args.dup, predictions, args.kernel
    );

    let direct = run_mode(&args, DispatchMode::Direct)?;
    let batched = run_mode(
        &args,
        DispatchMode::Batched(BatchOptions {
            max_batch: (args.clients * args.dup).max(2),
            max_wait: Duration::from_micros(args.batch_wait_us),
        }),
    )?;

    // equal work or the comparison is meaningless
    if direct.workload_fnv != batched.workload_fnv {
        return Err(format!(
            "dispatch modes diverged: direct fnv {:016x}, batched fnv {:016x}",
            direct.workload_fnv, batched.workload_fnv
        )
        .into());
    }
    println!(
        "modes agree bit-exactly (workload checksum {:016x})\n",
        direct.workload_fnv
    );

    let rps = |m: &ModeResult| predictions as f64 / m.wall.as_secs_f64();
    let widths = [8usize, 8, 10, 10, 10, 12];
    println!(
        "{}",
        row(
            &[
                "Mode".into(),
                "Count".into(),
                "p50 (us)".into(),
                "p90 (us)".into(),
                "p99 (us)".into(),
                "pred/s".into(),
            ],
            &widths
        )
    );
    let mode_row = |name: &str, m: &ModeResult| {
        row(
            &[
                name.into(),
                requests.to_string(),
                percentile(&m.latencies_us, 0.50).to_string(),
                percentile(&m.latencies_us, 0.90).to_string(),
                percentile(&m.latencies_us, 0.99).to_string(),
                format!("{:.0}", rps(m)),
            ],
            &widths,
        )
    };
    println!("{}", mode_row("direct", &direct));
    println!("{}", mode_row("batched", &batched));
    let speedup = rps(&batched) / rps(&direct);
    let p99_ratio = percentile(&batched.latencies_us, 0.99) as f64
        / percentile(&direct.latencies_us, 0.99).max(1) as f64;
    println!("\nbatched/direct throughput: {speedup:.2}x (p99 ratio {p99_ratio:.2})");

    let mode_json = |m: &ModeResult| {
        Json::obj(vec![
            ("p50_us", Json::UInt(percentile(&m.latencies_us, 0.50))),
            ("p90_us", Json::UInt(percentile(&m.latencies_us, 0.90))),
            ("p99_us", Json::UInt(percentile(&m.latencies_us, 0.99))),
            (
                "wall_ms",
                Json::Float((m.wall.as_secs_f64() * 1e6).round() / 1e3),
            ),
            ("predictions_per_s", Json::Float(rps(m).round())),
        ])
    };
    // timing-dependent fields are nulled in smoke so the file is
    // byte-identical across repeated runs at any QOR_THREADS
    let measured = if args.smoke {
        Json::Null
    } else {
        Json::obj(vec![
            ("direct", mode_json(&direct)),
            ("batched", mode_json(&batched)),
            ("speedup", Json::Float((speedup * 100.0).round() / 100.0)),
        ])
    };
    let entry = Json::obj(vec![
        ("bench", Json::str("qor_bench")),
        ("kernel", Json::str(&args.kernel)),
        ("rounds", Json::UInt(args.rounds as u64)),
        ("clients", Json::UInt(args.clients as u64)),
        ("dup", Json::UInt(args.dup as u64)),
        ("requests", Json::UInt(requests as u64)),
        ("predictions", Json::UInt(predictions as u64)),
        ("smoke", Json::Bool(args.smoke)),
        (
            "workload_fnv",
            Json::Str(format!("{:016x}", direct.workload_fnv)),
        ),
        ("measured", measured),
    ]);
    let total = trajectory::append(
        std::path::Path::new(&args.out),
        trajectory::SERVE_SCHEMA,
        &entry,
    )?;
    println!("appended to {} ({total} entries)", args.out);
    Ok(())
}
