//! Regenerates **Table V**: DSE results on the four unseen kernels (bicg,
//! symm, mvt, syrk).
//!
//! Trains the hierarchical model plus the two baselines on the 12 training
//! kernels, then explores each hold-out kernel's pragma space with all
//! three predictors, reporting design-space size, the simulated Vivado
//! exhaustive-sweep time, the measured model-guided DSE time, and ADRS.
//!
//! Usage: `cargo run --release -p qor-bench --bin table5 [--paper]
//! [--dse-configs N]`

use dse::{explore, FlatGnnBaseline, HLS_SECS_PER_DESIGN};
use obs::Json;
use qor_bench::{row, Cli};
use qor_core::HierarchicalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let cli = Cli::parse();
    let opts = cli.train_options();

    obs::tracef!(1, "generating training dataset...");
    let designs = qor_core::generate(&opts.data)?;
    obs::tracef!(1, "training hierarchical model (ours)...");
    let (ours, _stats) = HierarchicalModel::train_with_designs(&opts, &designs)?;
    obs::tracef!(1, "training Wu et al. [8] (HLS-IR-fed flat GNN)...");
    let mut wu = FlatGnnBaseline::wu_dse(cli.baseline_options());
    wu.train(&designs)?;
    obs::tracef!(
        1,
        "training GNN-DSE [6] (pragma features, post-HLS labels)..."
    );
    let mut gnn_dse = FlatGnnBaseline::gnn_dse(cli.baseline_options());
    gnn_dse.train(&designs)?;

    let widths = [8usize, 8, 12, 10, 9, 9, 9];
    println!("\nTable V: DSE results on unseen applications\n");
    println!(
        "{}",
        row(
            &[
                "Kernel".into(),
                "#Config".into(),
                "Vivado".into(),
                "Ours-time".into(),
                "[8] ADRS".into(),
                "[6] ADRS".into(),
                "Ours ADRS".into(),
            ],
            &widths
        )
    );

    let mut adrs_sums = [0.0f64; 3];
    let mut n_kernels = 0.0f64;
    let mut report_rows: Vec<Vec<Json>> = Vec::new();
    for k in kernels::dse_kernels() {
        let func = kernels::lower_kernel(k.name)?;
        let space = kernels::design_space(&func);
        let cap = cli.dse_cap();
        let configs = if cap == 0 {
            space.enumerate()
        } else {
            space.enumerate_capped(cap)
        };
        obs::tracef!(1, "exploring {} ({} configs)...", k.name, configs.len());

        let ours_out = explore(k.name, &func, &configs, |f, c| ours.predict(f, c), 0.0)?;
        let wu_out = explore(
            k.name,
            &func,
            &configs,
            |f, c| wu.predict(f, c),
            HLS_SECS_PER_DESIGN,
        )?;
        let dse_out = explore(k.name, &func, &configs, |f, c| gnn_dse.predict(f, c), 0.0)?;

        adrs_sums[0] += wu_out.adrs_percent();
        adrs_sums[1] += dse_out.adrs_percent();
        adrs_sums[2] += ours_out.adrs_percent();
        n_kernels += 1.0;
        report_rows.push(vec![
            Json::str(k.name),
            Json::UInt(ours_out.n_configs as u64),
            Json::Float(ours_out.vivado_secs),
            Json::Float(ours_out.explore_secs),
            Json::Float(wu_out.adrs_percent()),
            Json::Float(dse_out.adrs_percent()),
            Json::Float(ours_out.adrs_percent()),
        ]);

        println!(
            "{}",
            row(
                &[
                    k.name.into(),
                    format!("{}", ours_out.n_configs),
                    format!("{:.0} days", ours_out.vivado_days()),
                    format!("{:.2} min", ours_out.explore_minutes()),
                    format!("{:.2}", wu_out.adrs_percent()),
                    format!("{:.2}", dse_out.adrs_percent()),
                    format!("{:.2}", ours_out.adrs_percent()),
                ],
                &widths
            )
        );
        obs::tracef!(
            1,
            "  [8] DSE time (incl. HLS per design): {:.1} h",
            wu_out.explore_secs / 3600.0
        );
    }
    println!(
        "\naverage ADRS: [8] {:.2}%  [6] {:.2}%  ours {:.2}%",
        adrs_sums[0] / n_kernels,
        adrs_sums[1] / n_kernels,
        adrs_sums[2] / n_kernels,
    );
    obs::report::record_table(
        "table5",
        &[
            "kernel",
            "n_configs",
            "vivado_secs",
            "explore_secs",
            "wu_adrs_percent",
            "gnn_dse_adrs_percent",
            "ours_adrs_percent",
        ],
        report_rows,
    );
    Ok(())
}
