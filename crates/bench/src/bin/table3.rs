//! Regenerates **Table III**: MAPE of post-route QoR with different GNNs.
//!
//! For each propagation-layer family (GCN, GAT, GraphSAGE, TransformerConv,
//! PNA) the full hierarchical pipeline is trained on the shared dataset and
//! evaluated on the held-out test split, reporting per-metric MAPE for
//! `GNN_p`, `GNN_np` and `GNN_g`.
//!
//! Usage: `cargo run --release -p qor-bench --bin table3 [--paper]
//! [--designs N] [--epochs N]`

use gnn::ConvKind;
use obs::Json;
use qor_bench::{pct, row, Cli};
use qor_core::HierarchicalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let cli = Cli::parse();
    let opts = cli.train_options();

    obs::tracef!(
        1,
        "generating dataset ({} designs/kernel, 12 kernels)...",
        opts.data.max_designs_per_kernel
    );
    let designs = qor_core::generate(&opts.data)?;
    obs::tracef!(
        1,
        "dataset: {} train / {} val / {} test designs",
        designs.train.len(),
        designs.val.len(),
        designs.test.len()
    );

    let widths = [12usize, 8, 9, 9, 8, 8, 8];
    println!("\nTable III: MAPE of post-route QoR with different GNNs\n");
    println!(
        "{}",
        row(
            &[
                "GNN type".into(),
                "model".into(),
                "Latency".into(),
                "IterLat".into(),
                "DSP".into(),
                "LUT".into(),
                "FF".into(),
            ],
            &widths
        )
    );

    // the five conv families are independent: train them in parallel
    let results: Vec<(ConvKind, qor_core::TrainStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ConvKind::all()
            .into_iter()
            .map(|conv| {
                let designs = &designs;
                scope.spawn(move || {
                    let conv_opts = opts.with_conv(conv);
                    obs::tracef!(1, "training hierarchy with {conv}...");
                    let (_model, stats) =
                        HierarchicalModel::train_with_designs(&conv_opts, designs)
                            .expect("training on a generated dataset");
                    (conv, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("training thread"))
            .collect()
    });

    let mut report_rows: Vec<Vec<Json>> = Vec::new();
    for (conv, stats) in results {
        let p = stats.pipelined;
        let np = stats.non_pipelined;
        let g = stats.global;
        for (model, lat, il, dsp, lut, ff) in [
            (
                "GNN_p",
                p.latency_mape,
                Some(p.il_mape),
                p.dsp_mape,
                p.lut_mape,
                p.ff_mape,
            ),
            (
                "GNN_np",
                np.latency_mape,
                Some(np.il_mape),
                np.dsp_mape,
                np.lut_mape,
                np.ff_mape,
            ),
            (
                "GNN_g",
                g.latency_mape,
                None,
                g.dsp_mape,
                g.lut_mape,
                g.ff_mape,
            ),
        ] {
            report_rows.push(vec![
                Json::str(conv.to_string()),
                Json::str(model),
                Json::from(lat),
                il.map_or(Json::Null, Json::from),
                Json::from(dsp),
                Json::from(lut),
                Json::from(ff),
            ]);
        }
        println!(
            "{}",
            row(
                &[
                    conv.to_string(),
                    "GNN_p".into(),
                    pct(p.latency_mape),
                    pct(p.il_mape),
                    pct(p.dsp_mape),
                    pct(p.lut_mape),
                    pct(p.ff_mape),
                ],
                &widths
            )
        );
        let np = stats.non_pipelined;
        println!(
            "{}",
            row(
                &[
                    conv.to_string(),
                    "GNN_np".into(),
                    pct(np.latency_mape),
                    pct(np.il_mape),
                    pct(np.dsp_mape),
                    pct(np.lut_mape),
                    pct(np.ff_mape),
                ],
                &widths
            )
        );
        let g = stats.global;
        println!(
            "{}",
            row(
                &[
                    conv.to_string(),
                    "GNN_g".into(),
                    pct(g.latency_mape),
                    "N/A".into(),
                    pct(g.dsp_mape),
                    pct(g.lut_mape),
                    pct(g.ff_mape),
                ],
                &widths
            )
        );
        obs::tracef!(
            1,
            "  dataset sizes: p={} np={} g={}",
            stats.dataset_sizes.0,
            stats.dataset_sizes.1,
            stats.dataset_sizes.2
        );
    }
    obs::report::record_table(
        "table3",
        &[
            "gnn",
            "model",
            "latency_mape",
            "il_mape",
            "dsp_mape",
            "lut_mape",
            "ff_mape",
        ],
        report_rows,
    );
    Ok(())
}
