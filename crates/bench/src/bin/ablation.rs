//! Ablation study of the paper's design choices (motivated by §III):
//!
//! 1. **hierarchical vs flat** — the full pipeline against a single
//!    whole-graph GNN on identical pragma-transformed graphs and labels;
//! 2. **pragma-in-structure vs pragma-as-features** — structural graph
//!    transforms against flat graphs annotated with pragma feature columns;
//! 3. **separate `GNN_p`/`GNN_np` vs one shared inner model**.
//!
//! Usage: `cargo run --release -p qor-bench --bin ablation [--paper]`

use dse::{BaselineOptions, FlatGnnBaseline, LabelSpace};
use obs::Json;
use qor_bench::{pct, row, Cli};
use qor_core::HierarchicalModel;

/// A post-route-label flat baseline with pragma *features* on pragma-blind
/// structure (isolates the graph-construction choice from the label choice).
fn pragma_features_post_route(opts: BaselineOptions) -> FlatGnnBaseline {
    // gnn_dse uses PostHls labels; re-train a feature-variant on PostRoute
    // by reusing its graph representation through LabelSpace::PostRoute.
    FlatGnnBaseline::with_config(opts, false, true, LabelSpace::PostRoute)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = obs::init();
    let cli = Cli::parse();
    let opts = cli.train_options();

    obs::tracef!(1, "generating dataset...");
    let designs = qor_core::generate(&opts.data)?;

    obs::tracef!(1, "[1/4] full hierarchical model...");
    let (_full, full_stats) = HierarchicalModel::train_with_designs(&opts, &designs)?;

    obs::tracef!(
        1,
        "[2/4] flat whole-graph GNN (same graphs, same labels)..."
    );
    let mut flat = FlatGnnBaseline::wu_dse(cli.baseline_options());
    flat.train(&designs)?;
    let flat_eval = flat.eval_against_post_route(&designs, &designs.test)?;

    obs::tracef!(
        1,
        "[3/4] pragma-as-features flat GNN (post-route labels)..."
    );
    let mut feats = pragma_features_post_route(cli.baseline_options());
    feats.train(&designs)?;
    let feats_eval = feats.eval_against_post_route(&designs, &designs.test)?;

    obs::tracef!(1, "[4/4] shared inner model (no GNN_p/GNN_np split)...");
    let shared_opts = opts.with_shared_inner(true);
    let (_shared, shared_stats) = HierarchicalModel::train_with_designs(&shared_opts, &designs)?;

    let widths = [34usize, 9, 8, 8, 8];
    println!("\nAblation: application-level test MAPE (post-route labels)\n");
    println!(
        "{}",
        row(
            &[
                "Variant".into(),
                "Latency".into(),
                "DSP".into(),
                "LUT".into(),
                "FF".into(),
            ],
            &widths
        )
    );
    let rows: Vec<(&str, qor_core::GlobalEval)> = vec![
        ("hierarchical + structural pragmas", full_stats.global),
        ("flat GNN, structural pragmas", flat_eval),
        ("flat GNN, pragma-as-features", feats_eval),
        ("hierarchical, shared inner model", shared_stats.global),
    ];
    let mut report_rows: Vec<Vec<Json>> = Vec::new();
    for (name, e) in rows {
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    pct(e.latency_mape),
                    pct(e.dsp_mape),
                    pct(e.lut_mape),
                    pct(e.ff_mape),
                ],
                &widths
            )
        );
        report_rows.push(vec![
            Json::str(name),
            Json::from(e.latency_mape),
            Json::from(e.dsp_mape),
            Json::from(e.lut_mape),
            Json::from(e.ff_mape),
        ]);
    }
    obs::report::record_table(
        "ablation",
        &["variant", "latency_mape", "dsp_mape", "lut_mape", "ff_mape"],
        report_rows,
    );
    println!(
        "\nseparate vs shared inner (GNN_p latency): {} vs {}",
        pct(full_stats.pipelined.latency_mape),
        pct(shared_stats.pipelined.latency_mape),
    );
    Ok(())
}
