//! `qor-bench fleet_scaling` — distributed-DSE throughput at 1, 2 and 4
//! workers against the single-process baseline.
//!
//! The workload is one seeded random-sampling search job (same kernel,
//! seed, budget and batch at every fleet size, so every run does
//! identical work), evaluated four ways: in-process
//! [`search::SessionEval`], then through [`fleet::FleetEval`] over real
//! HTTP against 1, 2 and 4 in-process `serve::Server` workers. Every
//! path pays the same synthetic per-candidate evaluator latency
//! (`--delay-us`, wired through `QOR_FLEET_EVAL_DELAY_US`): the fleet is
//! shaped for evaluators far heavier than microsecond model inference
//! (an HLS run, a remote oracle), and on a small CI host it is that
//! latency — not compute — that distribution can actually overlap, so
//! the bench measures the dispatch pipeline's concurrency rather than
//! the host's core count. Each worker serves the *same*
//! untrained model weights the coordinator holds (identical
//! [`TrainOptions`]), so every run's ledger digest must equal the solo
//! run's — the bench aborts on any divergence, making the throughput
//! numbers provably measurements of byte-identical work.
//!
//! Throughput is points/sec = budget spent / wall time. The scaling gate
//! (non-smoke): ≥ 1.7x points/sec at 2 workers and ≥ 3x at 4, both
//! relative to the 1-worker fleet run (the apples-to-apples baseline that
//! includes the wire). Results append to the `BENCH_fleet.json`
//! trajectory; `--smoke` shrinks scale and nulls timing-dependent fields
//! so repeated runs against a fresh `--out` are byte-identical at any
//! `QOR_THREADS` — the CI determinism gate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fleet::{FleetEval, FleetOptions, FleetStats, Roster};
use obs::Json;
use qor_core::{HierarchicalModel, Session, TrainOptions};
use search::{SearchOptions, SearchOutcome, SearchRun, SessionEval, StrategyKind};
use serve::{DispatchMode, HttpTransport, ModelRegistry, Server, ServerConfig, ServerHandle};

use crate::trajectory;

/// Model seed shared by the coordinator and every worker.
const MODEL_SEED: u64 = 5;

/// Search seed: all runs propose the identical candidate stream.
const SEARCH_SEED: u64 = 77;

/// Parsed `fleet_scaling` options.
#[derive(Debug, Clone)]
pub struct ScalingArgs {
    /// Kernel whose space the job searches.
    pub kernel: String,
    /// Evaluation budget per run.
    pub budget: u64,
    /// Candidates proposed per step (sharded over the live workers).
    pub batch: usize,
    /// Hidden width of the (untrained) model.
    pub hidden: usize,
    /// Synthetic per-candidate evaluator latency in microseconds (paid
    /// identically by the solo baseline and every worker).
    pub delay_us: u64,
    /// Determinism-gate mode: shrink scale, null timings.
    pub smoke: bool,
    /// Trajectory file to append to.
    pub out: String,
}

impl Default for ScalingArgs {
    fn default() -> Self {
        ScalingArgs {
            kernel: "atax".to_string(),
            budget: 192,
            batch: 32,
            hidden: 12,
            delay_us: 10_000,
            smoke: false,
            out: "BENCH_fleet.json".to_string(),
        }
    }
}

impl ScalingArgs {
    /// Parses the argument list after the `fleet_scaling` subcommand word.
    pub fn parse(argv: &[String]) -> ScalingArgs {
        let mut args = ScalingArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let uint = |argv: &[String], i: usize, default: usize| {
                argv.get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &usize| v >= 1)
                    .unwrap_or(default)
            };
            match argv[i].as_str() {
                "--kernel" => {
                    i += 1;
                    if let Some(k) = argv.get(i) {
                        args.kernel = k.clone();
                    }
                }
                "--budget" => {
                    i += 1;
                    args.budget = uint(argv, i, args.budget as usize) as u64;
                }
                "--batch" => {
                    i += 1;
                    args.batch = uint(argv, i, args.batch);
                }
                "--hidden" => {
                    i += 1;
                    args.hidden = uint(argv, i, args.hidden);
                }
                "--delay-us" => {
                    i += 1;
                    args.delay_us = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.delay_us);
                }
                "--smoke" => args.smoke = true,
                "--out" => {
                    i += 1;
                    args.out = argv
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
                }
                other => eprintln!("ignoring unknown flag {other:?}"),
            }
            i += 1;
        }
        if args.smoke {
            args.budget = args.budget.min(24);
            args.batch = args.batch.min(6);
            args.hidden = args.hidden.min(12);
            args.delay_us = 0;
        }
        args
    }
}

fn model_opts(args: &ScalingArgs) -> TrainOptions {
    TrainOptions::quick()
        .with_hidden(args.hidden)
        .with_seed(MODEL_SEED)
}

fn search_opts(args: &ScalingArgs) -> SearchOptions {
    // random sampling proposes (nearly) all-fresh batches, so every step
    // actually has `batch` candidates to shard — the genetic strategy
    // re-proposes mostly ledger hits and leaves nothing to distribute
    SearchOptions::new(args.kernel.as_str(), StrategyKind::Random, args.budget)
        .with_seed(SEARCH_SEED)
        .with_batch(args.batch)
        .with_unroll_factors(vec![1, 2, 4, 8, 16])
}

/// Spawns one in-process worker server (Direct dispatch — fleet units are
/// already batches; a small session cache keeps the eval work honest).
fn spawn_worker(args: &ScalingArgs) -> Result<ServerHandle, String> {
    let registry = Arc::new(ModelRegistry::with_default(
        HierarchicalModel::new(&model_opts(args)),
        16,
    ));
    let config = ServerConfig {
        dispatch: DispatchMode::Direct,
        ..ServerConfig::default()
    };
    Server::bind_with("127.0.0.1:0", registry, config)
        .map_err(|e| format!("bind worker: {e}"))?
        .spawn()
        .map_err(|e| format!("spawn worker: {e}"))
}

/// One measured run.
struct RunResult {
    /// Fleet size (0 = in-process solo baseline).
    workers: usize,
    outcome: SearchOutcome,
    digest: u64,
    elapsed: Duration,
    /// Units dispatched over the wire (0 for solo).
    units: u64,
}

impl RunResult {
    fn points_per_sec(&self) -> f64 {
        self.outcome.spent as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The solo baseline's evaluator: the plain in-process path plus the
/// same per-candidate latency the workers pay.
struct DelayEval {
    inner: SessionEval,
    delay: Duration,
}

impl search::Evaluate for DelayEval {
    fn evaluate(&self, cfg: &pragma::PragmaConfig) -> Result<(f64, f64), qor_core::QorError> {
        let point = self.inner.evaluate(cfg)?;
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Ok(point)
    }
}

fn solo_run(args: &ScalingArgs) -> Result<RunResult, String> {
    let session = Arc::new(Session::with_capacity(
        HierarchicalModel::new(&model_opts(args)),
        16,
    ));
    let eval = DelayEval {
        inner: SessionEval::new(session, args.kernel.as_str()),
        delay: Duration::from_micros(args.delay_us),
    };
    let mut run = SearchRun::for_kernel(search_opts(args)).map_err(|e| e.to_string())?;
    let t = Instant::now();
    let outcome = run.run(&eval).map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();
    Ok(RunResult {
        workers: 0,
        digest: fleet::run_digest(&run),
        outcome,
        elapsed,
        units: 0,
    })
}

fn fleet_run(args: &ScalingArgs, workers: &[ServerHandle], n: usize) -> Result<RunResult, String> {
    let roster = Arc::new(Roster::new(2));
    for w in &workers[..n] {
        roster.register(&w.addr().to_string());
    }
    let transport: Arc<dyn fleet::Transport> =
        Arc::new(HttpTransport::with_timeout(Duration::from_secs(30)));
    let stats = Arc::new(FleetStats::default());
    let eval = FleetEval::new(
        transport,
        roster,
        args.kernel.as_str(),
        "bench:fleet_scaling",
    )
    .with_unroll_factors(Some(vec![1, 2, 4, 8, 16]))
    .with_options(FleetOptions::default())
    .with_stats(Arc::clone(&stats));
    let mut run = SearchRun::for_kernel(search_opts(args)).map_err(|e| e.to_string())?;
    let t = Instant::now();
    let outcome = run.run_with(&eval).map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();
    Ok(RunResult {
        workers: n,
        digest: fleet::run_digest(&run),
        outcome,
        elapsed,
        units: stats.snapshot().dispatched,
    })
}

/// Entry point for the `fleet_scaling` subcommand. Returns the process
/// exit code (non-zero when a scaling target fails in a non-smoke run).
pub fn run(argv: &[String]) -> Result<i32, Box<dyn std::error::Error>> {
    let args = ScalingArgs::parse(argv);
    println!(
        "fleet_scaling: kernel {}, budget {}, batch {}, hidden {}, delay {} us, smoke={}",
        args.kernel, args.budget, args.batch, args.hidden, args.delay_us, args.smoke
    );
    // in-process workers read the delay from the environment
    std::env::set_var("QOR_FLEET_EVAL_DELAY_US", args.delay_us.to_string());

    let solo = solo_run(&args)?;
    let workers: Vec<ServerHandle> = (0..4)
        .map(|_| spawn_worker(&args))
        .collect::<Result<_, _>>()?;
    let mut runs = vec![solo];
    for n in [1usize, 2, 4] {
        let r = fleet_run(&args, &workers, n)?;
        // identical work or the throughput comparison is meaningless
        if r.outcome != runs[0].outcome || r.digest != runs[0].digest {
            return Err(format!(
                "{n}-worker fleet run diverged from solo (digest {:016x} vs {:016x})",
                r.digest, runs[0].digest
            )
            .into());
        }
        runs.push(r);
    }
    for w in workers {
        w.shutdown();
    }
    std::env::remove_var("QOR_FLEET_EVAL_DELAY_US");

    let widths = [10usize, 8, 12, 12, 8];
    println!(
        "{}",
        crate::row(
            &[
                "Workers".into(),
                "Units".into(),
                "Elapsed (ms)".into(),
                "Points/sec".into(),
                "Scaling".into(),
            ],
            &widths
        )
    );
    let base = runs[1].points_per_sec();
    for r in &runs {
        let label = if r.workers == 0 {
            "solo".to_string()
        } else {
            r.workers.to_string()
        };
        let scaling = if r.workers >= 1 {
            format!("{:.2}x", r.points_per_sec() / base)
        } else {
            "-".into()
        };
        println!(
            "{}",
            crate::row(
                &[
                    label,
                    r.units.to_string(),
                    r.elapsed.as_millis().to_string(),
                    format!("{:.1}", r.points_per_sec()),
                    scaling,
                ],
                &widths
            )
        );
    }
    let s2 = runs[2].points_per_sec() / base;
    let s4 = runs[3].points_per_sec() / base;
    let pass_2 = s2 >= 1.7;
    let pass_4 = s4 >= 3.0;
    println!(
        "\nscaling vs 1 worker: {s2:.2}x at 2 (target 1.7x: {}), {s4:.2}x at 4 (target 3x: {})",
        if pass_2 { "pass" } else { "FAIL" },
        if pass_4 { "pass" } else { "FAIL" },
    );
    println!(
        "all four runs byte-identical (ledger digest {:016x})",
        runs[0].digest
    );

    // timing-dependent fields are nulled in smoke so the file is
    // byte-identical across repeated runs at any QOR_THREADS
    let measured = if args.smoke {
        Json::Null
    } else {
        let per_run = |r: &RunResult| {
            Json::obj(vec![
                ("workers", Json::UInt(r.workers as u64)),
                ("units", Json::UInt(r.units)),
                ("elapsed_ms", Json::UInt(r.elapsed.as_millis() as u64)),
                (
                    "points_per_sec",
                    Json::Float((r.points_per_sec() * 10.0).round() / 10.0),
                ),
            ])
        };
        Json::obj(vec![
            ("runs", Json::Arr(runs.iter().map(per_run).collect())),
            ("speedup_2x", Json::Float((s2 * 100.0).round() / 100.0)),
            ("speedup_4x", Json::Float((s4 * 100.0).round() / 100.0)),
            ("pass_2x", Json::Bool(pass_2)),
            ("pass_4x", Json::Bool(pass_4)),
        ])
    };
    let entry = Json::obj(vec![
        ("bench", Json::str("fleet_scaling")),
        ("kernel", Json::str(args.kernel.as_str())),
        ("budget", Json::UInt(args.budget)),
        ("batch", Json::UInt(args.batch as u64)),
        ("hidden", Json::UInt(args.hidden as u64)),
        ("delay_us", Json::UInt(args.delay_us)),
        ("spent", Json::UInt(runs[0].outcome.spent)),
        ("smoke", Json::Bool(args.smoke)),
        ("digest_fnv", Json::Str(format!("{:016x}", runs[0].digest))),
        ("measured", measured),
    ]);
    let total = trajectory::append(
        std::path::Path::new(&args.out),
        trajectory::FLEET_SCHEMA,
        &entry,
    )?;
    println!("appended to {} ({total} entries)", args.out);
    // smoke is a determinism gate, not a performance gate: timings on CI
    // machines are too noisy to fail a build on
    Ok(if (pass_2 && pass_4) || args.smoke {
        0
    } else {
        1
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_smoke_shrink() {
        let d = ScalingArgs::parse(&[]);
        assert_eq!(d.budget, 192);
        assert_eq!(d.batch, 32);
        assert_eq!(d.hidden, 12);
        assert_eq!(d.delay_us, 10_000);
        assert!(!d.smoke);
        let s = ScalingArgs::parse(&[
            "--smoke".into(),
            "--kernel".into(),
            "bicg".into(),
            "--out".into(),
            "x.json".into(),
        ]);
        assert!(s.smoke);
        assert_eq!(s.kernel, "bicg");
        assert!(s.budget <= 24 && s.batch <= 6 && s.hidden <= 12);
        assert_eq!(s.delay_us, 0, "smoke must not sleep");
        assert_eq!(s.out, "x.json");
    }

    #[test]
    fn smoke_scaling_appends_deterministic_entries() {
        let dir = std::env::temp_dir().join(format!("qor_fleet_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_fleet.json");
        let argv = |out: &std::path::Path| {
            vec![
                "--smoke".to_string(),
                "--out".to_string(),
                out.to_string_lossy().into_owned(),
            ]
        };
        assert_eq!(run(&argv(&out)).unwrap(), 0);
        let first = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&out).unwrap();
        assert_eq!(run(&argv(&out)).unwrap(), 0);
        let second = std::fs::read_to_string(&out).unwrap();
        // smoke entries carry no timings, so reruns are byte-identical
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).ok();
    }
}
