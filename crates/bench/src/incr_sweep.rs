//! `qor-bench incr_sweep` — amortized prepare cost on pragma-neighbor
//! sweeps: cold vs warm (LRU) vs incremental (query database).
//!
//! The workload mirrors the evaluation stream a DSE strategy actually
//! emits: starting from a seeded random genome, each step samples a
//! 1-neighborhood of the current design (every candidate is one pragma
//! move away), then the walk moves to one of the neighbors. Annealers and
//! genetic strategies revisit configurations constantly, and neighboring
//! configurations share most of their per-loop region configs, so the
//! stream contains both exact revisits and structural overlap — the two
//! reuse axes the incremental engine is built for. The stream is *not*
//! deduplicated; deduplication is itself a caching strategy, and the
//! point is to compare strategies on the same stream.
//!
//! Every candidate in the stream is prepared three ways:
//!
//! * **cold** — [`HierarchicalModel::prepare`] from scratch, the
//!   no-cache baseline;
//! * **warm** — a [`Session`] whose prepared-design LRU is on but whose
//!   incremental database is off: exact revisits hit, everything else is
//!   a from-scratch rebuild;
//! * **incremental** — the production stack: the same LRU *plus* the
//!   per-model `QueryDb` behind it, so LRU misses (new neighbors) reuse
//!   unchanged per-loop subgraphs instead of rebuilding from scratch.
//!   The `vs warm` column is therefore the query engine's marginal
//!   contribution on an identical stream.
//!
//! All three [`PreparedDesign::digest`]s must agree on every candidate
//! (the run aborts otherwise), so the speedups are measured on provably
//! byte-identical outputs. Results append to the `BENCH_incr.json`
//! trajectory; with `--smoke`, scale shrinks and timing-dependent fields
//! are nulled so repeated runs against a fresh `--out` are byte-identical
//! at any `QOR_THREADS` — the CI determinism gate.
//!
//! [`PreparedDesign::digest`]: qor_core::PreparedDesign::digest

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use obs::Json;
use qor_core::{fnv1a, HierarchicalModel, IncrCounts, Session, SharedCache, TrainOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use search::{Genome, SpaceModel};

use crate::trajectory;

/// LRU capacity for the warm bar — large enough that the sweep never
/// evicts, so the warm numbers measure the strategy, not the sizing.
const WARM_CAP: usize = 4096;

/// Folds one more digest into a running FNV-1a accumulator.
fn mix(acc: u64, v: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = qor_core::Fnv1aHasher::new();
    h.write_u64(acc);
    h.write_u64(v);
    h.finish()
}

/// Parsed `incr_sweep` options.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Neighbor-walk steps per kernel.
    pub steps: usize,
    /// Sampled neighbors per step.
    pub breadth: usize,
    /// Steps spent at each walk center before moving (annealer-style
    /// dwell: most candidates are rejected, so consecutive steps sample
    /// overlapping neighborhoods).
    pub dwell: usize,
    /// Kernel cap (0 = all bundled kernels).
    pub max_kernels: usize,
    /// Determinism-gate mode: shrink scale, null timings.
    pub smoke: bool,
    /// Trajectory file to append to.
    pub out: String,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            steps: 48,
            breadth: 8,
            dwell: 4,
            max_kernels: 0,
            smoke: false,
            out: "BENCH_incr.json".to_string(),
        }
    }
}

impl SweepArgs {
    /// Parses the argument list after the `incr_sweep` subcommand word.
    pub fn parse(argv: &[String]) -> SweepArgs {
        let mut args = SweepArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let uint = |argv: &[String], i: usize, default: usize| {
                argv.get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &usize| v >= 1)
                    .unwrap_or(default)
            };
            match argv[i].as_str() {
                "--steps" => {
                    i += 1;
                    args.steps = uint(argv, i, args.steps);
                }
                "--breadth" => {
                    i += 1;
                    args.breadth = uint(argv, i, args.breadth);
                }
                "--dwell" => {
                    i += 1;
                    args.dwell = uint(argv, i, args.dwell);
                }
                "--kernels" => {
                    i += 1;
                    args.max_kernels = uint(argv, i, args.max_kernels);
                }
                "--smoke" => args.smoke = true,
                "--out" => {
                    i += 1;
                    args.out = argv
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| "BENCH_incr.json".to_string());
                }
                other => eprintln!("ignoring unknown flag {other:?}"),
            }
            i += 1;
        }
        if args.smoke {
            args.steps = args.steps.min(4);
            args.breadth = args.breadth.min(6);
            if args.max_kernels == 0 {
                args.max_kernels = 4;
            }
        }
        args
    }
}

/// The two benchmark sessions, sharing one trained model's weights by
/// training twice from the same seed (training is deterministic).
pub(crate) struct Paths {
    /// LRU on, incremental database off.
    warm: Session,
    /// Production stack: the same LRU plus the incremental database.
    incr: Session,
}

impl Paths {
    fn new(opts: &TrainOptions) -> Paths {
        Paths {
            warm: Session::with_shared(
                HierarchicalModel::new(opts),
                Arc::new(SharedCache::with_options(WARM_CAP, false)),
            ),
            incr: Session::with_shared(
                HierarchicalModel::new(opts),
                Arc::new(SharedCache::with_options(WARM_CAP, true)),
            ),
        }
    }
}

/// Per-kernel sweep outcome.
struct KernelResult {
    name: &'static str,
    /// Total candidates in the stream (revisits included).
    candidates: usize,
    /// Distinct pragma fingerprints in the stream.
    unique: usize,
    cold_us: u64,
    warm_us: u64,
    incr_us: u64,
    incr: IncrCounts,
    /// FNV over the candidate digests in evaluation order.
    digest_fnv: u64,
}

/// Runs the sweep over one kernel; `None` when the kernel has no
/// searchable loop space.
fn sweep_kernel(
    name: &'static str,
    args: &SweepArgs,
    paths: &Paths,
) -> Result<Option<KernelResult>, String> {
    let func = kernels::lower_kernel(name).map_err(|e| format!("{name}: {e}"))?;
    let space = kernels::design_space(&func);
    let model = match SpaceModel::new(space) {
        Ok(m) => m,
        Err(_) => return Ok(None), // no loops to sweep
    };
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut center = model.random_genome(&mut rng);

    let mut seen: HashSet<u64> = HashSet::new();
    let mut result = KernelResult {
        name,
        candidates: 0,
        unique: 0,
        cold_us: 0,
        warm_us: 0,
        incr_us: 0,
        incr: IncrCounts::default(),
        digest_fnv: fnv1a(name.as_bytes()),
    };
    let arc_func = std::sync::Arc::new(func);
    for step in 0..args.steps {
        let mut next: Option<Genome> = None;
        for _ in 0..args.breadth {
            let cand = model.neighbor(&center, &mut rng);
            if next.is_none() {
                next = Some(cand.clone());
            }
            let cfg = model.decode(&cand);
            if seen.insert(cfg.fingerprint()) {
                result.unique += 1;
            }
            result.candidates += 1;

            let t = Instant::now();
            let (prepared, report) = paths
                .incr
                .prepare_kernel(name, &cfg)
                .map_err(|e| format!("{name}: {e}"))?;
            result.incr_us += t.elapsed().as_micros() as u64;
            result.incr.absorb(&report.incr);

            let t = Instant::now();
            let (warm, _) = paths
                .warm
                .prepare_kernel(name, &cfg)
                .map_err(|e| format!("{name}: {e}"))?;
            result.warm_us += t.elapsed().as_micros() as u64;

            let t = Instant::now();
            let cold = paths.incr.model().prepare(arc_func.clone(), cfg.clone());
            result.cold_us += t.elapsed().as_micros() as u64;

            let (di, dw, dc) = (prepared.digest(), warm.digest(), cold.digest());
            if di != dc || dw != dc {
                return Err(format!(
                    "{name}: prepare paths diverged (incr {di:016x}, warm {dw:016x}, \
                     cold {dc:016x}, cfg fp {:016x})",
                    cfg.fingerprint()
                ));
            }
            result.digest_fnv = mix(result.digest_fnv, di);
        }
        // move the walk to the first sampled neighbor once per dwell
        // window — the deterministic analogue of an annealer accepting
        // one move in `dwell` proposals
        if step % args.dwell == args.dwell - 1 {
            if let Some(g) = next {
                center = g;
            }
        }
    }
    Ok(Some(result))
}

/// Entry point for the `incr_sweep` subcommand. Returns the process exit
/// code (non-zero when the ≥10x gate fails in a non-smoke run).
pub fn run(argv: &[String]) -> Result<i32, Box<dyn std::error::Error>> {
    let args = SweepArgs::parse(argv);
    let opts = TrainOptions::quick().with_hidden(12).with_seed(4);
    let paths = Paths::new(&opts);

    let mut names: Vec<&'static str> = kernels::all().iter().map(|k| k.name).collect();
    if args.max_kernels > 0 {
        names.truncate(args.max_kernels);
    }
    println!(
        "incr_sweep: {} kernels, {} steps x {} neighbors, dwell {}, smoke={}",
        names.len(),
        args.steps,
        args.breadth,
        args.dwell,
        args.smoke
    );

    let mut results: Vec<KernelResult> = Vec::new();
    for name in names {
        if let Some(r) = sweep_kernel(name, &args, &paths)? {
            results.push(r);
        }
    }
    if results.is_empty() {
        return Err("no kernel produced a searchable space".into());
    }

    let widths = [12usize, 6, 6, 10, 10, 10, 9, 9];
    println!(
        "{}",
        crate::row(
            &[
                "Kernel".into(),
                "Cand".into(),
                "Uniq".into(),
                "cold (us)".into(),
                "warm (us)".into(),
                "incr (us)".into(),
                "vs cold".into(),
                "vs warm".into(),
            ],
            &widths
        )
    );
    let mut total_cand = 0usize;
    let mut total_unique = 0usize;
    let mut total_cold = 0u64;
    let mut total_warm = 0u64;
    let mut total_incr_us = 0u64;
    let mut totals = IncrCounts::default();
    let mut digest_fnv = crate::trajectory::INCR_SCHEMA.len() as u64;
    for r in &results {
        let vs_cold = r.cold_us as f64 / (r.incr_us.max(1)) as f64;
        let vs_warm = r.warm_us as f64 / (r.incr_us.max(1)) as f64;
        println!(
            "{}",
            crate::row(
                &[
                    r.name.into(),
                    r.candidates.to_string(),
                    r.unique.to_string(),
                    r.cold_us.to_string(),
                    r.warm_us.to_string(),
                    r.incr_us.to_string(),
                    format!("{vs_cold:.1}x"),
                    format!("{vs_warm:.1}x"),
                ],
                &widths
            )
        );
        total_cand += r.candidates;
        total_unique += r.unique;
        total_cold += r.cold_us;
        total_warm += r.warm_us;
        total_incr_us += r.incr_us;
        totals.absorb(&r.incr);
        digest_fnv = mix(digest_fnv, r.digest_fnv);
    }
    let speedup = total_cold as f64 / total_incr_us.max(1) as f64;
    let vs_warm = total_warm as f64 / total_incr_us.max(1) as f64;
    let pass_10x = speedup >= 10.0;
    println!(
        "\n{} candidates ({} unique): cold {} us, warm {} us, incremental {} us",
        total_cand, total_unique, total_cold, total_warm, total_incr_us,
    );
    println!(
        "amortized: {:.1}x vs cold (target 10x: {}), {:.1}x vs warm LRU",
        speedup,
        if pass_10x { "pass" } else { "FAIL" },
        vs_warm
    );
    println!("all candidate digests byte-identical across the three paths");
    println!("\nper-kind query counters (incremental path):");
    for (kind, s) in paths.incr.shared_cache().incr_kind_stats() {
        println!(
            "  {kind:>14}: hits {} (validated {}, reused {}), misses {}, recomputes {}",
            s.hits, s.validated, s.reused, s.misses, s.recomputes
        );
    }

    // timing-dependent fields are nulled in smoke so the file is
    // byte-identical across repeated runs at any QOR_THREADS
    let measured = if args.smoke {
        Json::Null
    } else {
        Json::obj(vec![
            ("cold_us", Json::UInt(total_cold)),
            ("warm_us", Json::UInt(total_warm)),
            ("incr_us", Json::UInt(total_incr_us)),
            (
                "amortized_cold_us",
                Json::UInt(total_cold / total_cand.max(1) as u64),
            ),
            (
                "amortized_incr_us",
                Json::UInt(total_incr_us / total_cand.max(1) as u64),
            ),
            ("speedup", Json::Float((speedup * 100.0).round() / 100.0)),
            (
                "speedup_vs_warm",
                Json::Float((vs_warm * 100.0).round() / 100.0),
            ),
            ("pass_10x", Json::Bool(pass_10x)),
        ])
    };
    let entry = Json::obj(vec![
        ("bench", Json::str("incr_sweep")),
        ("kernels", Json::UInt(results.len() as u64)),
        ("steps", Json::UInt(args.steps as u64)),
        ("breadth", Json::UInt(args.breadth as u64)),
        ("dwell", Json::UInt(args.dwell as u64)),
        ("candidates", Json::UInt(total_cand as u64)),
        ("unique", Json::UInt(total_unique as u64)),
        ("smoke", Json::Bool(args.smoke)),
        ("digest_fnv", Json::Str(format!("{digest_fnv:016x}"))),
        (
            "incr",
            Json::obj(vec![
                ("hits", Json::UInt(totals.hits)),
                ("misses", Json::UInt(totals.misses)),
                ("recomputes", Json::UInt(totals.recomputes)),
            ]),
        ),
        ("measured", measured),
    ]);
    let total = trajectory::append(
        std::path::Path::new(&args.out),
        trajectory::INCR_SCHEMA,
        &entry,
    )?;
    println!("appended to {} ({total} entries)", args.out);
    // smoke is a determinism gate, not a performance gate: timings on CI
    // machines are too noisy to fail a build on
    Ok(if pass_10x || args.smoke { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_smoke_shrink() {
        let d = SweepArgs::parse(&[]);
        assert_eq!(d.steps, 48);
        assert_eq!(d.max_kernels, 0);
        assert!(!d.smoke);
        let s = SweepArgs::parse(&["--smoke".into(), "--out".into(), "x.json".into()]);
        assert!(s.smoke);
        assert_eq!(s.max_kernels, 4);
        assert!(s.steps <= 4);
        assert_eq!(s.out, "x.json");
    }

    #[test]
    fn smoke_sweep_is_deterministic_and_byte_identical() {
        let args = SweepArgs {
            steps: 2,
            breadth: 3,
            dwell: 2,
            max_kernels: 1,
            smoke: true,
            out: String::new(),
        };
        let opts = TrainOptions::quick().with_hidden(12).with_seed(4);
        let run_once = || {
            let paths = Paths::new(&opts);
            let r = sweep_kernel("gemm", &args, &paths)
                .unwrap()
                .expect("gemm has loops");
            (r.candidates, r.unique, r.digest_fnv, r.incr)
        };
        assert_eq!(run_once(), run_once());
    }
}
