#![warn(missing_docs)]
//! Shared harness for the table-regenerating binaries.
//!
//! Every binary accepts `--paper` for full scale (slow) and defaults to a
//! quick scale that reproduces the tables' *shape* in minutes. See
//! `EXPERIMENTS.md` at the repository root for recorded outputs.

use qor_core::TrainOptions;

pub mod fleet_scaling;
pub mod fuzz;
pub mod incr_sweep;
pub mod timing;
pub mod trajectory;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale run (default).
    Quick,
    /// Paper-scale run (hundreds of designs per kernel, 250 epochs).
    Paper,
}

/// Parsed command-line options shared by the binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Selected scale.
    pub scale: Scale,
    /// Optional cap override for designs per kernel.
    pub designs: Option<usize>,
    /// Optional epoch override.
    pub epochs: Option<usize>,
    /// Optional cap on DSE configurations per kernel.
    pub dse_configs: Option<usize>,
    /// Optional worker-count override (the `scaling` binary's upper point).
    pub threads: Option<usize>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Quick,
            designs: None,
            epochs: None,
            dse_configs: None,
            threads: None,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// Recognized flags: `--paper`, `--quick`, `--designs N`, `--epochs N`,
    /// `--dse-configs N`, `--threads N`.
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => cli.scale = Scale::Paper,
                "--quick" => cli.scale = Scale::Quick,
                "--designs" => {
                    i += 1;
                    cli.designs = args.get(i).and_then(|v| v.parse().ok());
                }
                "--epochs" => {
                    i += 1;
                    cli.epochs = args.get(i).and_then(|v| v.parse().ok());
                }
                "--dse-configs" => {
                    i += 1;
                    cli.dse_configs = args.get(i).and_then(|v| v.parse().ok());
                }
                "--threads" => {
                    i += 1;
                    cli.threads = args.get(i).and_then(|v| v.parse().ok());
                }
                other => eprintln!("ignoring unknown flag {other:?}"),
            }
            i += 1;
        }
        cli
    }

    /// Hierarchical-model training options at this scale.
    pub fn train_options(&self) -> TrainOptions {
        let mut opts = match self.scale {
            Scale::Quick => TrainOptions::quick(),
            Scale::Paper => TrainOptions::paper(),
        };
        if let Some(d) = self.designs {
            opts = opts.with_max_designs(d);
        }
        if let Some(e) = self.epochs {
            opts = opts.with_epochs(e);
        }
        opts
    }

    /// Cap on DSE configurations per kernel (0 = full space).
    pub fn dse_cap(&self) -> usize {
        self.dse_configs.unwrap_or(match self.scale {
            Scale::Quick => 400,
            Scale::Paper => 0,
        })
    }

    /// Baseline training options consistent with [`Cli::train_options`].
    pub fn baseline_options(&self) -> dse::BaselineOptions {
        let t = self.train_options();
        dse::BaselineOptions {
            conv: t.conv,
            hidden: t.hidden,
            epochs: t.inner_epochs,
            batch_size: t.batch_size,
            lr: t.lr,
            seed: t.seed ^ 0x55,
            graph_max_nodes: t.graph_max_nodes,
        }
    }
}

/// Prints an aligned table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!(" {c:>w$} |", w = w));
    }
    out
}

/// Formats a percentage cell.
pub fn pct(v: f32) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_defaults() {
        let cli = Cli::default();
        let opts = cli.train_options();
        assert!(opts.inner_epochs <= 60);
        assert_eq!(cli.dse_cap(), 400);
    }

    #[test]
    fn overrides_apply() {
        let cli = Cli {
            scale: Scale::Paper,
            designs: Some(10),
            epochs: Some(3),
            dse_configs: Some(25),
            threads: Some(4),
        };
        let opts = cli.train_options();
        assert_eq!(opts.data.max_designs_per_kernel, 10);
        assert_eq!(opts.inner_epochs, 3);
        assert_eq!(cli.dse_cap(), 25);
    }

    #[test]
    fn row_formats_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "|   a |   bb |");
    }
}
