//! Append-only benchmark trajectories.
//!
//! `BENCH_serve.json` used to be a single JSON object that every run
//! overwrote, which destroyed the history a trajectory file exists to
//! keep. It is now a schema-versioned document holding an *array* of
//! entries:
//!
//! ```json
//! {"schema":"qor-bench-serve/v2","entries":[{...},{...}]}
//! ```
//!
//! [`append`] reads the existing document (migrating a legacy v1
//! single-object file into the first entry), pushes the new entry and
//! rewrites the file. Entries are kept verbatim as the bytes they were
//! written with, so appending never reformats history.

use std::io;
use std::path::Path;

use obs::Json;

/// Schema tag for the serving-benchmark trajectory document.
pub const SERVE_SCHEMA: &str = "qor-bench-serve/v2";

/// Schema tag for the incremental neighbor-sweep trajectory document
/// (`BENCH_incr.json`).
pub const INCR_SCHEMA: &str = "qor-bench-incr/v1";

/// Schema tag for the fleet-scaling trajectory document
/// (`BENCH_fleet.json`).
pub const FLEET_SCHEMA: &str = "qor-bench-fleet/v1";

/// Appends `entry` to the trajectory document at `path`, creating the
/// document (or migrating a legacy single-object file) as needed.
/// Returns the number of entries the document now holds.
pub fn append(path: &Path, schema: &str, entry: &Json) -> io::Result<usize> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => parse_entries(&text, schema)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    entries.push(entry.to_string());
    let mut out = format!("{{\"schema\":{},\"entries\":[\n", Json::str(schema));
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    std::fs::write(path, out)?;
    Ok(entries.len())
}

/// Extracts the existing entries (as verbatim JSON strings) from a
/// trajectory document; a legacy single-object file becomes the sole
/// entry, an empty/blank file none.
fn parse_entries(text: &str, schema: &str) -> Result<Vec<String>, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    let header = format!("{{\"schema\":{},\"entries\":[", Json::str(schema));
    let Some(body) = trimmed.strip_prefix(header.as_str()) else {
        // legacy v1: one bare object per file — migrate it as entry 0
        if trimmed.starts_with('{') && trimmed.ends_with('}') {
            return Ok(vec![trimmed.to_string()]);
        }
        return Err(format!(
            "neither a {schema} document nor a legacy object: {:?}...",
            &trimmed[..trimmed.len().min(40)]
        ));
    };
    let body = body
        .strip_suffix("]}")
        .ok_or_else(|| format!("unterminated {schema} document"))?;
    split_top_level(body)
}

/// Splits a comma-separated list of JSON values at nesting depth zero,
/// honouring strings and escapes.
fn split_top_level(body: &str) -> Result<Vec<String>, String> {
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced brackets in trajectory".to_string())?
            }
            ',' if !in_str && depth == 0 => {
                let e = body[start..i].trim();
                if !e.is_empty() {
                    entries.push(e.to_string());
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str || depth != 0 {
        return Err("unbalanced trajectory document".to_string());
    }
    let tail = body[start..].trim();
    if !tail.is_empty() {
        entries.push(tail.to_string());
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("qor-traj-{}-{name}.json", std::process::id()))
    }

    fn entry(n: u64) -> Json {
        Json::obj(vec![("bench", Json::str("t")), ("n", Json::UInt(n))])
    }

    #[test]
    fn creates_then_appends_in_order() {
        let path = tmp("append");
        let _ = std::fs::remove_file(&path);
        assert_eq!(append(&path, SERVE_SCHEMA, &entry(1)).unwrap(), 1);
        assert_eq!(append(&path, SERVE_SCHEMA, &entry(2)).unwrap(), 2);
        assert_eq!(append(&path, SERVE_SCHEMA, &entry(3)).unwrap(), 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"qor-bench-serve/v2\",\"entries\":["));
        let i1 = text.find("\"n\":1").unwrap();
        let i2 = text.find("\"n\":2").unwrap();
        let i3 = text.find("\"n\":3").unwrap();
        assert!(i1 < i2 && i2 < i3, "{text}");
        // the document parses with the serve-side reader too
        serve::json::parse(&text).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn migrates_a_legacy_single_object_file() {
        let path = tmp("legacy");
        std::fs::write(
            &path,
            "{\"bench\":\"serve_latency\",\"measured\":{\"p99_us\":42,\"tag\":\"a,b]}\"}}\n",
        )
        .unwrap();
        assert_eq!(append(&path, SERVE_SCHEMA, &entry(9)).unwrap(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        // the legacy object survives verbatim as entry 0
        let legacy = text.find("\"p99_us\":42").unwrap();
        let fresh = text.find("\"n\":9").unwrap();
        assert!(legacy < fresh, "{text}");
        serve::json::parse(&text).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage_instead_of_clobbering_it() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let err = append(&path, SERVE_SCHEMA, &entry(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // the file is untouched
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "not json at all");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn split_handles_nesting_strings_and_escapes() {
        let parts =
            split_top_level(r#"{"a":[1,2],"s":"x,\"y\",{z}"},{"b":{"c":[3,{"d":4}]}}"#).unwrap();
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("{z}"));
        assert!(parts[1].ends_with("}"));
        assert!(split_top_level(r#"{"a":1"#).is_err());
    }
}
