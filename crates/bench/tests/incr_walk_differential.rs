//! Randomized pragma-neighbor walks on every bundled kernel: the
//! incremental query engine and from-scratch preparation must be
//! byte-identical on the exact candidate stream a DSE strategy emits.
//!
//! The walks use the same [`SpaceModel`] move set as the search engine
//! (pipeline flips forcing full unrolls below, unroll/partition steps,
//! flatten toggles), so cross-loop couplings the pragma space introduces
//! are exercised, not just independent single-pragma edits. `ci.sh` runs
//! this at `QOR_THREADS=1` and `QOR_THREADS=4`.

use std::sync::Arc;

use qor_core::{fnv1a, HierarchicalModel, Session, SharedCache, TrainOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use search::SpaceModel;

#[test]
fn random_walks_byte_identical_on_all_kernels() {
    let opts = TrainOptions::quick().with_hidden(10).with_seed(9);
    // LRU off: every candidate goes through the query database
    let session = Session::with_shared(
        HierarchicalModel::new(&opts),
        Arc::new(SharedCache::with_options(0, true)),
    );
    let mut walked = 0;
    for k in kernels::all() {
        let func = kernels::lower_kernel(k.name).expect("bundled kernel lowers");
        let space = kernels::design_space(&func);
        let model = match SpaceModel::new(space) {
            Ok(m) => m,
            Err(_) => continue, // no loops to sweep
        };
        let mut rng = StdRng::seed_from_u64(fnv1a(k.name.as_bytes()) ^ 0xD1FF);
        let mut center = model.random_genome(&mut rng);
        let arc = Arc::new(func);
        for step in 0..8 {
            let cand = model.neighbor(&center, &mut rng);
            let cfg = model.decode(&cand);
            let (prepared, _) = session.prepare_kernel(k.name, &cfg).expect(k.name);
            let cold = session.model().prepare(arc.clone(), cfg.clone());
            assert_eq!(
                prepared.digest(),
                cold.digest(),
                "{} diverged at step {step}, cfg {:016x}",
                k.name,
                cfg.fingerprint()
            );
            center = cand;
        }
        walked += 1;
    }
    assert!(
        walked >= 10,
        "expected most bundled kernels to have a space"
    );
}
