//! Differential oracle: the AST-level reference interpreter
//! (`crates/interp`) against the lowered-HIR executor (`hir::execute`) on
//! generated programs.
//!
//! Both sides run every generated program on identical seeded inputs; the
//! final array state must agree **bit-for-bit** (`f64::to_bits`, so a NaN
//! produced by one side must be produced — with the same payload — by the
//! other). Divergence means the lowering changed observable semantics,
//! which is exactly the bug class source-level QoR prediction cannot
//! tolerate. The same programs must also build CDFGs and evaluate under
//! `hlsim`, and the whole differential verdict stream must be identical
//! at `QOR_THREADS=1` and `QOR_THREADS=4`.

use qor_core::fnv1a;

/// Seeds the differential suite sweeps (≥ 200 per the fuzz-gate contract).
const SEEDS: u64 = 220;

/// Runs one generated program through both interpreters; returns a
/// digest-friendly verdict line describing the final memory state.
fn differential_one(seed: u64) -> String {
    let source = kernels::synthetic_kernel(seed);
    let top = format!("synth{seed}");
    let program = frontc::parse(&source).unwrap_or_else(|e| {
        panic!("seed {seed}: generated program fails front-end: {e}\n{source}")
    });
    let module = hir::lower(&program)
        .unwrap_or_else(|e| panic!("seed {seed}: generated program fails lowering: {e}\n{source}"));
    let func_def = program.function(&top).expect("ast function");
    let func = module.function(&top).expect("hir function");

    // identical seeded inputs on both sides (arrays + scalar params)
    let mut ast_mem = interp::seeded_memory(func_def, seed);
    let mut hir_mem = ast_mem.clone();

    let stats = interp::execute(func_def, &mut ast_mem)
        .unwrap_or_else(|e| panic!("seed {seed}: reference interpreter failed: {e}\n{source}"));
    hir::execute(func, &mut hir_mem)
        .unwrap_or_else(|e| panic!("seed {seed}: HIR executor failed: {e}\n{source}"));

    // bit-exact array comparison (NaN-safe)
    let mut line = format!("{seed}");
    for name in ast_mem.array_names() {
        let a = ast_mem.get(name).unwrap();
        let h = hir_mem
            .get(name)
            .unwrap_or_else(|| panic!("seed {seed}: array {name} missing on the HIR side"));
        assert_eq!(
            a.len(),
            h.len(),
            "seed {seed}: array {name} length diverges"
        );
        for (i, (x, y)) in a.iter().zip(h.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "seed {seed}: {name}[{i}] diverges: ast={x:?} hir={y:?}\n{source}"
            );
        }
        let bits: u64 = a.iter().fold(0u64, |acc, v| {
            acc.wrapping_mul(0x100000001b3).wrapping_add(v.to_bits())
        });
        line.push_str(&format!(" {name}:{bits:016x}"));
    }

    // observed iteration counts must equal the static trip-count products
    for meta in func.loops() {
        let key = meta.id.to_string();
        let mut expected = meta.trip_count;
        let mut cur = meta.id.clone();
        while let Some(parent) = cur.parent().filter(|p| !p.path().is_empty()) {
            expected *= func
                .loop_meta(&parent)
                .unwrap_or_else(|| panic!("seed {seed}: no meta for {parent}"))
                .trip_count;
            cur = parent;
        }
        assert_eq!(
            stats.loop_iterations.get(&key).copied(),
            Some(expected),
            "seed {seed}: loop {key} iteration count diverges from static trip counts\n{source}"
        );
    }

    // the same program must survive the prediction front half
    let g = cdfg::GraphBuilder::new(func, &pragma::PragmaConfig::default()).build();
    assert!(g.num_nodes() > 0, "seed {seed}: empty CDFG");
    let report = hlsim::evaluate(func, &pragma::PragmaConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed}: hlsim failed: {e}\n{source}"));
    assert!(report.top.latency > 0, "seed {seed}: zero latency");

    line
}

#[test]
fn interpreter_matches_lowered_semantics_on_generated_corpus() {
    let seeds: Vec<u64> = (0..SEEDS).collect();
    let lines = par::map("differential", &seeds, |_, &s| differential_one(s));
    assert_eq!(lines.len(), SEEDS as usize);
    // every seed produced a nonempty verdict line
    assert!(lines.iter().all(|l| !l.is_empty()));
}

#[test]
fn differential_verdicts_are_thread_count_independent() {
    let seeds: Vec<u64> = (300..340).collect();
    par::set_threads(Some(1));
    let one = par::map("differential_t1", &seeds, |_, &s| differential_one(s));
    par::set_threads(Some(4));
    let four = par::map("differential_t4", &seeds, |_, &s| differential_one(s));
    par::set_threads(None);
    let digest = |lines: &[String]| fnv1a(lines.join("\n").as_bytes());
    assert_eq!(
        digest(&one),
        digest(&four),
        "differential verdicts must be byte-identical at QOR_THREADS=1 and 4"
    );
}

#[test]
fn scalar_rebinding_and_mixed_types_agree_on_a_fixed_program() {
    // a hand-written program hitting the trickiest lowering rules at once:
    // plain assignment rebinding a float var to an int expression, ternary
    // evaluating both arms, integer division/remainder semantics, and
    // compound assignment promotion
    let src = "void tricky(float a[8], int b[8], float out[8], int n) {
        for (int i = 0; i < 8; i++) {
            float t = a[i] * 2.0;
            t = b[i] / 3;
            out[i] = (b[i] % 2 == 0) ? t + a[i] : t - 1.0;
        }
    }";
    let program = frontc::parse(src).unwrap();
    let module = hir::lower(&program).unwrap();
    let fd = program.function("tricky").unwrap();
    let f = module.function("tricky").unwrap();
    for seed in [1u64, 7, 99] {
        let mut ast_mem = interp::seeded_memory(fd, seed);
        let mut hir_mem = ast_mem.clone();
        interp::execute(fd, &mut ast_mem).unwrap();
        hir::execute(f, &mut hir_mem).unwrap();
        let a = ast_mem.get("out").unwrap();
        let h = hir_mem.get("out").unwrap();
        for (x, y) in a.iter().zip(h.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "seed {seed}: ast={x:?} hir={y:?}");
        }
    }
}
