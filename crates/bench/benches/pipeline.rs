//! Microbenchmarks for the runtime claims of §IV-D: graph construction,
//! feature annotation, oracle evaluation, model inference and a training
//! step — i.e. everything on the "tens of minutes instead of tens of days"
//! critical path.
//!
//! Runs on the workspace's own harness (`qor_bench::timing`); criterion is
//! unavailable in the offline build environment. With `QOR_REPORT=path.json`
//! the results are also written to the JSON run report as the
//! `bench/pipeline` table.

use gnn::{Batch, ConvKind, EncoderConfig, GraphData, RegressionModel, TrainConfig};
use pragma::{LoopId, PragmaConfig, Unroll};
use qor_bench::timing::{bench, bench_batched, record_suite};
use qor_core::{graph_to_gnn, HierarchicalModel, TrainOptions};
use tensor::ParamStore;

fn pragma_config() -> PragmaConfig {
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[0, 0, 0]), true);
    cfg.set_unroll(LoopId::from_path(&[0, 0]), Unroll::Factor(2));
    cfg
}

fn main() {
    let _obs = obs::init();
    let mut results = Vec::new();

    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();

    results.push(bench("cdfg/build_gemm_pragma_graph", || {
        std::hint::black_box(cdfg::GraphBuilder::new(&func, &cfg).build());
    }));

    let graph = cdfg::GraphBuilder::new(&func, &cfg).build();
    results.push(bench("features/annotate_gemm", || {
        std::hint::black_box(graph_to_gnn(&graph));
    }));

    results.push(bench("hlsim/evaluate_gemm", || {
        std::hint::black_box(hlsim::evaluate(&func, &cfg).expect("evaluates"));
    }));

    let model = HierarchicalModel::new(&TrainOptions::quick());
    results.push(bench("predict/source_to_qor_gemm", || {
        std::hint::black_box(model.predict(&func, &cfg));
    }));

    let mvt = kernels::lower_kernel("mvt").expect("kernel");
    let space = kernels::design_space(&mvt);
    results.push(bench("dse/enumerate_mvt_space", || {
        std::hint::black_box(space.enumerate());
    }));

    // one mini-batch forward+backward+adam over gemm-sized graphs
    let data = graph_to_gnn(&graph);
    let pairs: Vec<(GraphData, Vec<f32>)> = (0..8).map(|_| (data.clone(), vec![1.0f32])).collect();
    results.push(bench_batched(
        "train/one_epoch_batch8_sage",
        || {
            let mut store = ParamStore::new();
            let model = RegressionModel::new(
                &mut store,
                &EncoderConfig::new(ConvKind::Sage, pairs[0].0.feat_dim(), 16),
                0,
                1,
                3,
            );
            (store, model)
        },
        |(mut store, model)| {
            let train_cfg = TrainConfig {
                epochs: 1,
                batch_size: 8,
                ..TrainConfig::default()
            };
            std::hint::black_box(gnn::train_regression(
                &mut store,
                &model,
                &pairs,
                &[],
                &train_cfg,
            ));
        },
    ));

    let graphs: Vec<&GraphData> = std::iter::repeat_n(&data, 16).collect();
    results.push(bench("gnn/collate_batch16", || {
        std::hint::black_box(Batch::from_graphs(&graphs, true));
    }));

    record_suite("pipeline", &results);
}
