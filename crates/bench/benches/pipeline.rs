//! Criterion microbenchmarks for the runtime claims of §IV-D: graph
//! construction, feature annotation, oracle evaluation, model inference and
//! a training step — i.e. everything on the "tens of minutes instead of
//! tens of days" critical path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gnn::{Batch, ConvKind, EncoderConfig, GraphData, RegressionModel, TrainConfig};
use pragma::{LoopId, PragmaConfig, Unroll};
use qor_core::{graph_to_gnn, HierarchicalModel, TrainOptions};
use tensor::ParamStore;

fn pragma_config() -> PragmaConfig {
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[0, 0, 0]), true);
    cfg.set_unroll(LoopId::from_path(&[0, 0]), Unroll::Factor(2));
    cfg
}

fn bench_graph_construction(c: &mut Criterion) {
    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();
    c.bench_function("cdfg/build_gemm_pragma_graph", |b| {
        b.iter(|| cdfg::GraphBuilder::new(&func, &cfg).build())
    });
}

fn bench_feature_annotation(c: &mut Criterion) {
    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();
    let graph = cdfg::GraphBuilder::new(&func, &cfg).build();
    c.bench_function("features/annotate_gemm", |b| {
        b.iter(|| graph_to_gnn(&graph))
    });
}

fn bench_oracle_evaluation(c: &mut Criterion) {
    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();
    c.bench_function("hlsim/evaluate_gemm", |b| {
        b.iter(|| hlsim::evaluate(&func, &cfg).expect("evaluates"))
    });
}

fn bench_model_inference(c: &mut Criterion) {
    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();
    let model = HierarchicalModel::new(&TrainOptions::quick());
    c.bench_function("predict/source_to_qor_gemm", |b| {
        b.iter(|| model.predict(&func, &cfg))
    });
}

fn bench_design_space_enumeration(c: &mut Criterion) {
    let func = kernels::lower_kernel("mvt").expect("kernel");
    let space = kernels::design_space(&func);
    c.bench_function("dse/enumerate_mvt_space", |b| b.iter(|| space.enumerate()));
}

fn bench_training_step(c: &mut Criterion) {
    // one mini-batch forward+backward+adam over gemm-sized graphs
    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();
    let graph = cdfg::GraphBuilder::new(&func, &cfg).build();
    let data = graph_to_gnn(&graph);
    let graphs: Vec<GraphData> = (0..8).map(|_| data.clone()).collect();
    let pairs: Vec<(GraphData, Vec<f32>)> =
        graphs.into_iter().map(|g| (g, vec![1.0f32])).collect();

    c.bench_function("train/one_epoch_batch8_sage", |b| {
        b.iter_batched(
            || {
                let mut store = ParamStore::new();
                let model = RegressionModel::new(
                    &mut store,
                    &EncoderConfig::new(ConvKind::Sage, pairs[0].0.feat_dim(), 16),
                    0,
                    1,
                    3,
                );
                (store, model)
            },
            |(mut store, model)| {
                let train_cfg = TrainConfig {
                    epochs: 1,
                    batch_size: 8,
                    ..TrainConfig::default()
                };
                gnn::train_regression(&mut store, &model, &pairs, &[], &train_cfg)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_batch_collation(c: &mut Criterion) {
    let func = kernels::lower_kernel("gemm").expect("kernel");
    let cfg = pragma_config();
    let graph = cdfg::GraphBuilder::new(&func, &cfg).build();
    let data = graph_to_gnn(&graph);
    let graphs: Vec<&GraphData> = std::iter::repeat(&data).take(16).collect();
    c.bench_function("gnn/collate_batch16", |b| {
        b.iter(|| Batch::from_graphs(&graphs, true))
    });
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(20);
    targets =
        bench_graph_construction,
        bench_feature_annotation,
        bench_oracle_evaluation,
        bench_model_inference,
        bench_design_space_enumeration,
        bench_training_step,
        bench_batch_collation
);
criterion_main!(pipeline);
