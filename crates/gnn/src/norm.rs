//! Per-output target standardization.

/// Column-wise z-score normalizer for regression targets.
///
/// Regression in raw log space still spans several units; standardizing to
/// zero mean / unit variance keeps initial losses and gradients O(1), which
/// the GNN training loops rely on.
///
/// # Example
///
/// ```
/// use gnn::Normalizer;
/// let norm = Normalizer::fit(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
/// let mut y = vec![2.0, 20.0];
/// norm.transform(&mut y);
/// assert!(y[0].abs() < 1e-6 && y[1].abs() < 1e-6); // both are the means
/// norm.inverse(&mut y);
/// assert!((y[0] - 2.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Identity normalizer of the given width (used before fitting).
    pub fn identity(dim: usize) -> Self {
        Normalizer {
            mean: vec![0.0; dim],
            std: vec![1.0; dim],
        }
    }

    /// Fits means and standard deviations column-wise.
    ///
    /// Degenerate columns (zero variance, or empty input) get `std = 1`.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        let Some(first) = rows.first() else {
            return Normalizer::identity(0);
        };
        let dim = first.len();
        let n = rows.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0f32; dim];
        for r in rows {
            for ((s, v), m) in std.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt();
            if *s < 1e-6 {
                *s = 1.0;
            }
        }
        Normalizer { mean, std }
    }

    /// Builds a normalizer from explicit statistics.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn from_stats(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert_eq!(mean.len(), std.len(), "mean/std width mismatch");
        let std = std
            .into_iter()
            .map(|s| if s.abs() < 1e-6 { 1.0 } else { s })
            .collect();
        Normalizer { mean, std }
    }

    /// Column means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Column standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Width of the normalizer.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes a row in place.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn transform(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.dim(), "normalizer width mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Undoes [`Normalizer::transform`] in place.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inverse(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.dim(), "normalizer width mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = *v * s + m;
        }
    }

    /// Un-standardizes a single column value.
    pub fn inverse_one(&self, col: usize, v: f32) -> f32 {
        v * self.std[col] + self.mean[col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let norm = Normalizer::fit(&[vec![1.0, -5.0], vec![3.0, 5.0], vec![5.0, 0.0]]);
        let original = vec![2.5, 4.0];
        let mut row = original.clone();
        norm.transform(&mut row);
        norm.inverse(&mut row);
        for (a, b) in row.iter().zip(&original) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn standardized_stats() {
        let rows = vec![vec![10.0], vec![20.0], vec![30.0], vec![40.0]];
        let norm = Normalizer::fit(&rows);
        let transformed: Vec<f32> = rows
            .iter()
            .map(|r| {
                let mut x = r.clone();
                norm.transform(&mut x);
                x[0]
            })
            .collect();
        let mean: f32 = transformed.iter().sum::<f32>() / 4.0;
        let var: f32 = transformed
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn degenerate_column_keeps_unit_std() {
        let norm = Normalizer::fit(&[vec![7.0], vec![7.0]]);
        let mut row = vec![9.0];
        norm.transform(&mut row);
        assert!((row[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn identity_passthrough() {
        let norm = Normalizer::identity(2);
        let mut row = vec![3.0, -4.0];
        norm.transform(&mut row);
        assert_eq!(row, vec![3.0, -4.0]);
    }
}
