//! Graph containers and mini-batch collation.

use std::sync::Arc;

use tensor::Matrix;

/// A single attributed directed graph.
///
/// `src[e] -> dst[e]` is edge `e`; messages flow from source to destination
/// during propagation. Optional graph-level features (`g_feats`) are
/// concatenated to the pooled embedding by [`RegressionModel`].
///
/// [`RegressionModel`]: crate::RegressionModel
///
/// # Example
///
/// ```
/// use gnn::GraphData;
/// use tensor::Matrix;
/// let g = GraphData::new(Matrix::zeros(2, 3), vec![0], vec![1]);
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphData {
    /// Node feature matrix, `num_nodes x feat_dim`.
    pub x: Matrix,
    /// Edge source node indices.
    pub src: Vec<u32>,
    /// Edge destination node indices.
    pub dst: Vec<u32>,
    /// Optional graph-level feature vector.
    pub g_feats: Vec<f32>,
}

impl GraphData {
    /// Creates a graph without graph-level features.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` lengths differ or reference nonexistent nodes.
    pub fn new(x: Matrix, src: Vec<u32>, dst: Vec<u32>) -> Self {
        Self::with_features(x, src, dst, Vec::new())
    }

    /// Creates a graph with graph-level features.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` lengths differ or reference nonexistent nodes.
    pub fn with_features(x: Matrix, src: Vec<u32>, dst: Vec<u32>, g_feats: Vec<f32>) -> Self {
        assert_eq!(src.len(), dst.len(), "edge list length mismatch");
        let n = x.rows() as u32;
        for (&s, &d) in src.iter().zip(&dst) {
            assert!(s < n && d < n, "edge ({s},{d}) out of bounds for {n} nodes");
        }
        GraphData {
            x,
            src,
            dst,
            g_feats,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Node feature dimension.
    pub fn feat_dim(&self) -> usize {
        self.x.cols()
    }
}

/// A collated mini-batch of graphs forming one block-diagonal super-graph.
///
/// Construction offsets node indices, optionally mirrors edges (so directed
/// CDFGs propagate information both ways), and precomputes the per-edge GCN
/// normalization coefficients and per-node in-degrees used by the
/// convolution layers.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stacked node features, `total_nodes x feat_dim`.
    pub x: Matrix,
    /// Edge sources (after offsetting/mirroring).
    pub src: Arc<Vec<u32>>,
    /// Edge destinations (after offsetting/mirroring).
    pub dst: Arc<Vec<u32>>,
    /// Graph id of each node.
    pub graph_of_node: Arc<Vec<u32>>,
    /// Number of graphs in the batch.
    pub n_graphs: usize,
    /// In-degree (message count) per node, excluding self-loops.
    pub in_deg: Vec<f32>,
    /// GCN edge list including self-loops.
    pub gcn_src: Arc<Vec<u32>>,
    /// GCN edge destinations including self-loops.
    pub gcn_dst: Arc<Vec<u32>>,
    /// Symmetric normalization coefficient per GCN edge.
    pub gcn_coef: Matrix,
    /// Stacked graph-level features, `n_graphs x g_feat_dim` (may be `n x 0`).
    pub g_feats: Matrix,
}

impl Batch {
    /// Collates graphs into a batch.
    ///
    /// When `mirror` is true, each edge `s -> d` also contributes a reverse
    /// edge `d -> s`, which is the standard treatment for CDFGs where QoR
    /// effects flow against def-use direction too.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or feature dimensions are inconsistent.
    pub fn from_graphs(graphs: &[&GraphData], mirror: bool) -> Self {
        assert!(!graphs.is_empty(), "cannot batch zero graphs");
        let feat_dim = graphs[0].feat_dim();
        let g_feat_dim = graphs[0].g_feats.len();
        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();

        let mut x = Matrix::zeros(total_nodes, feat_dim);
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut graph_of_node = Vec::with_capacity(total_nodes);
        let mut g_feats = Matrix::zeros(graphs.len(), g_feat_dim);

        let mut offset = 0u32;
        for (gi, g) in graphs.iter().enumerate() {
            assert_eq!(g.feat_dim(), feat_dim, "inconsistent node feature dims");
            assert_eq!(
                g.g_feats.len(),
                g_feat_dim,
                "inconsistent graph feature dims"
            );
            for r in 0..g.num_nodes() {
                x.row_mut(offset as usize + r).copy_from_slice(g.x.row(r));
                graph_of_node.push(gi as u32);
            }
            for (&s, &d) in g.src.iter().zip(&g.dst) {
                src.push(s + offset);
                dst.push(d + offset);
                if mirror && s != d {
                    src.push(d + offset);
                    dst.push(s + offset);
                }
            }
            for (j, &v) in g.g_feats.iter().enumerate() {
                g_feats[(gi, j)] = v;
            }
            offset += g.num_nodes() as u32;
        }

        let mut in_deg = vec![0.0f32; total_nodes];
        for &d in &dst {
            in_deg[d as usize] += 1.0;
        }

        // GCN: add self-loops, symmetric normalization 1/sqrt(d_i * d_j)
        // where degrees count the self-loop.
        let mut gcn_src = src.clone();
        let mut gcn_dst = dst.clone();
        for i in 0..total_nodes as u32 {
            gcn_src.push(i);
            gcn_dst.push(i);
        }
        let mut deg_loop = vec![1.0f32; total_nodes];
        for &d in &dst {
            deg_loop[d as usize] += 1.0;
        }
        let mut coef = Matrix::zeros(gcn_src.len(), 1);
        for e in 0..gcn_src.len() {
            let ds = deg_loop[gcn_src[e] as usize];
            let dd = deg_loop[gcn_dst[e] as usize];
            coef[(e, 0)] = 1.0 / (ds * dd).sqrt();
        }

        Batch {
            x,
            src: Arc::new(src),
            dst: Arc::new(dst),
            graph_of_node: Arc::new(graph_of_node),
            n_graphs: graphs.len(),
            in_deg,
            gcn_src: Arc::new(gcn_src),
            gcn_dst: Arc::new(gcn_dst),
            gcn_coef: coef,
            g_feats,
        }
    }

    /// Total nodes in the batch.
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Total (possibly mirrored) edges in the batch.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, edges: &[(u32, u32)]) -> GraphData {
        let x = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        GraphData::new(
            x,
            edges.iter().map(|e| e.0).collect(),
            edges.iter().map(|e| e.1).collect(),
        )
    }

    #[test]
    fn batch_offsets_node_indices() {
        let a = toy(2, &[(0, 1)]);
        let b = toy(3, &[(0, 2), (1, 2)]);
        let batch = Batch::from_graphs(&[&a, &b], false);
        assert_eq!(batch.num_nodes(), 5);
        assert_eq!(batch.num_edges(), 3);
        assert_eq!(batch.src.as_slice(), &[0, 2, 3]);
        assert_eq!(batch.dst.as_slice(), &[1, 4, 4]);
        assert_eq!(batch.graph_of_node.as_slice(), &[0, 0, 1, 1, 1]);
    }

    #[test]
    fn mirroring_doubles_edges() {
        let a = toy(3, &[(0, 1), (1, 2)]);
        let batch = Batch::from_graphs(&[&a], true);
        assert_eq!(batch.num_edges(), 4);
        assert_eq!(batch.in_deg, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn gcn_self_loops_present() {
        let a = toy(2, &[(0, 1)]);
        let batch = Batch::from_graphs(&[&a], false);
        assert_eq!(batch.gcn_src.len(), 1 + 2);
        // isolated-ish node 0 has degree 1 (self loop only)
        let coef_self_0 = batch.gcn_coef[(1, 0)];
        assert!((coef_self_0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn graph_features_stack() {
        let mut a = toy(2, &[(0, 1)]);
        a.g_feats = vec![1.0, 2.0];
        let mut b = toy(2, &[(0, 1)]);
        b.g_feats = vec![3.0, 4.0];
        let batch = Batch::from_graphs(&[&a, &b], false);
        assert_eq!(batch.g_feats.row(0), &[1.0, 2.0]);
        assert_eq!(batch.g_feats.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_edge_panics() {
        let _ = GraphData::new(Matrix::zeros(2, 1), vec![0], vec![5]);
    }
}
