//! Dense layers: `Linear` and `Mlp`.

use rand::rngs::StdRng;

use tensor::{init, ParamStore, Tape, Var};

/// A dense affine layer `y = x W + b`.
///
/// # Example
///
/// ```
/// use gnn::Linear;
/// use tensor::{init, Matrix, ParamStore, Tape};
///
/// let mut store = ParamStore::new();
/// let mut rng = init::seeded_rng(0);
/// let lin = Linear::new(&mut store, "head", 3, 2, &mut rng);
/// let mut tape = Tape::new();
/// let x = tape.leaf(Matrix::zeros(5, 3));
/// let y = lin.forward(&store, &mut tape, x);
/// assert_eq!(tape.value(y).shape(), (5, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: tensor::ParamId,
    b: tensor::ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init::xavier(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), init::zero_bias(out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, store: &ParamStore, t: &mut Tape, x: Var) -> Var {
        let w = t.param(store, self.w);
        let b = t.param(store, self.b);
        let xw = t.matmul(x, w);
        t.add_row(xw, b)
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A multi-layer perceptron with ReLU activations between layers (and a
/// linear final layer).
///
/// # Example
///
/// ```
/// use gnn::Mlp;
/// use tensor::{init, Matrix, ParamStore, Tape};
///
/// let mut store = ParamStore::new();
/// let mut rng = init::seeded_rng(0);
/// let mlp = Mlp::new(&mut store, "qor_head", &[8, 16, 1], &mut rng);
/// let mut tape = Tape::new();
/// let x = tape.leaf(Matrix::zeros(4, 8));
/// let y = mlp.forward(&store, &mut tape, x);
/// assert_eq!(tape.value(y).shape(), (4, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths (`dims.len() >= 2`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP.
    pub fn forward(&self, store: &ParamStore, t: &mut Tape, mut x: Var) -> Var {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(store, t, x);
            if i + 1 < n {
                x = t.relu(x);
            }
        }
        x
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Matrix;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = init::seeded_rng(3);
        let lin = Linear::new(&mut store, "l", 4, 7, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 4));
        let y = lin.forward(&store, &mut t, x);
        assert_eq!(t.value(y).shape(), (2, 7));
        assert_eq!(lin.in_dim(), 4);
        assert_eq!(lin.out_dim(), 7);
    }

    #[test]
    fn mlp_learns_linear_map() {
        // fit y = 2x - 1 with a tiny MLP
        let mut store = ParamStore::new();
        let mut rng = init::seeded_rng(5);
        let mlp = Mlp::new(&mut store, "m", &[1, 8, 1], &mut rng);
        let cfg = tensor::AdamConfig::with_lr(0.02);
        let xs = Matrix::col_vector(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let ys = xs.map(|v| 2.0 * v - 1.0);
        let mut last = f32::INFINITY;
        for _ in 0..800 {
            let mut t = Tape::new();
            let x = t.leaf(xs.clone());
            let target = t.leaf(ys.clone());
            let pred = mlp.forward(&store, &mut t, x);
            let loss = t.mse(pred, target);
            last = t.value(loss).item();
            t.backward(loss);
            store.adam_step(&t, &cfg);
        }
        assert!(last < 1e-3, "final loss too high: {last}");
    }
}
