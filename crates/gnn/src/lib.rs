#![warn(missing_docs)]
//! Graph neural network layers and training utilities, built on the
//! [`tensor`] autograd crate.
//!
//! The crate provides the five propagation-layer families evaluated in the
//! paper — GCN, GAT, GraphSAGE, TransformerConv and PNA — together with
//! sum ⊕ max graph pooling, MLP heads, mini-batch collation and a generic
//! regression trainer.
//!
//! # Example
//!
//! ```
//! use gnn::{Batch, ConvKind, EncoderConfig, GraphData, RegressionModel};
//! use tensor::{Matrix, ParamStore, Tape};
//!
//! let mut store = ParamStore::new();
//! let cfg = EncoderConfig::new(ConvKind::Sage, 4, 8);
//! let model = RegressionModel::new(&mut store, &cfg, 0, 2, 1);
//!
//! // a 3-node path graph with 4 features per node
//! let g = GraphData::new(
//!     Matrix::from_fn(3, 4, |r, c| (r + c) as f32),
//!     vec![0, 1],
//!     vec![1, 2],
//! );
//! let batch = Batch::from_graphs(&[&g], true);
//! let mut tape = Tape::new();
//! let out = model.forward(&store, &mut tape, &batch);
//! assert_eq!(tape.value(out).shape(), (1, 2));
//! ```

mod convs;
mod graph;
mod layers;
mod metrics;
mod norm;
mod trainer;

pub use convs::{ConvKind, Encoder, EncoderConfig};
pub use graph::{Batch, GraphData};
pub use layers::{Linear, Mlp};
pub use metrics::{mape, r_squared, rmse};
pub use norm::Normalizer;
pub use trainer::{train_regression, RegressionModel, TrainConfig, TrainReport, MICRO_BATCH};
