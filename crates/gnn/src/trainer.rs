//! Generic graph-regression model and training loop.
//!
//! Training is data-parallel over fixed-width micro-batches: each optimizer
//! step splits its mini-batch into [`MICRO_BATCH`]-sized slices, runs
//! forward/backward per slice on the `par` worker pool, and accumulates the
//! slice gradients in slice order before one Adam update. Because the slice
//! geometry and the reduction order depend only on the batch — never on the
//! worker count — losses and weights are bit-identical for any
//! `QOR_THREADS` setting.

use rand::seq::SliceRandom;

use tensor::{init, AdamConfig, GradSet, Matrix, ParamStore, Tape, Var};

use crate::convs::{Encoder, EncoderConfig};
use crate::graph::{Batch, GraphData};
use crate::layers::Mlp;
use crate::metrics::mape;

/// Encoder + MLP head predicting a fixed-size vector per graph.
///
/// The pooled graph embedding is concatenated with the batch's graph-level
/// features (if any) before the head — this is how loop-level features such
/// as II and TC enter the latency models.
#[derive(Debug, Clone)]
pub struct RegressionModel {
    encoder: Encoder,
    head: Mlp,
    g_feat_dim: usize,
}

impl RegressionModel {
    /// Builds a model with `g_feat_dim` graph-level features and `out_dim`
    /// regression outputs; `seed` controls weight initialization.
    pub fn new(
        store: &mut ParamStore,
        cfg: &EncoderConfig,
        g_feat_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = init::seeded_rng(seed);
        let encoder = Encoder::new(store, "encoder", cfg, &mut rng);
        let head_in = encoder.pooled_dim() + g_feat_dim;
        let head = Mlp::new(store, "head", &[head_in, cfg.hidden * 2, out_dim], &mut rng);
        RegressionModel {
            encoder,
            head,
            g_feat_dim,
        }
    }

    /// Forward pass, returning the `[n_graphs, out_dim]` prediction variable.
    ///
    /// # Panics
    ///
    /// Panics if the batch's graph-feature width differs from the model's.
    pub fn forward(&self, store: &ParamStore, t: &mut Tape, batch: &Batch) -> Var {
        assert_eq!(
            batch.g_feats.cols(),
            self.g_feat_dim,
            "graph feature width mismatch"
        );
        let pooled = self.encoder.forward_pooled(store, t, batch);
        let with_feats = if self.g_feat_dim > 0 {
            let gf = t.leaf(batch.g_feats.clone());
            t.concat_cols(&[pooled, gf])
        } else {
            pooled
        };
        self.head.forward(store, t, with_feats)
    }

    /// Convenience inference over a slice of graphs (no gradient tracking).
    pub fn predict(&self, store: &ParamStore, graphs: &[&GraphData]) -> Matrix {
        let batch = Batch::from_graphs(graphs, true);
        let mut t = Tape::new();
        let out = self.forward(store, &mut t, &batch);
        t.value(out).clone()
    }

    /// The underlying encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Number of regression outputs.
    pub fn out_dim(&self) -> usize {
        self.head.out_dim()
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Graphs per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop early after this many epochs without validation improvement
    /// (`0` disables early stopping).
    pub patience: usize,
    /// Print a progress line every N epochs (`0` silences).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            batch_size: 32,
            lr: 3e-3,
            weight_decay: 1e-5,
            seed: 0,
            patience: 0,
            log_every: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Final training loss (MSE in model space).
    pub final_loss: f32,
    /// Best validation MAPE observed (percent, model space).
    pub best_val_mape: f32,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Mean training loss of every epoch, in order (the determinism
    /// contract's witness: bit-identical across `QOR_THREADS` settings).
    pub epoch_losses: Vec<f32>,
}

/// Fixed micro-batch width for data-parallel gradient computation.
///
/// A constant (rather than `batch_size / workers`) so the floating-point
/// reduction tree is a function of the batch alone and results cannot drift
/// with the worker count.
pub const MICRO_BATCH: usize = 8;

/// One optimizer step over `chunk` (indices into `train`): micro-batched
/// data-parallel forward/backward, ordered gradient accumulation, one Adam
/// update. Returns the batch loss.
fn step_minibatch(
    store: &mut ParamStore,
    model: &RegressionModel,
    train: &[(GraphData, Vec<f32>)],
    chunk: &[usize],
    out_dim: usize,
    adam: &AdamConfig,
) -> f32 {
    let micros: Vec<&[usize]> = chunk.chunks(MICRO_BATCH).collect();
    let total = chunk.len() as f32;
    let shared: &ParamStore = store;
    let parts: Vec<(f32, GradSet)> = par::map("train/micro_batch", &micros, |_, ids| {
        let graphs: Vec<&GraphData> = ids.iter().map(|&i| &train[i].0).collect();
        let batch = Batch::from_graphs(&graphs, true);
        let mut targets = Matrix::zeros(ids.len(), out_dim);
        for (r, &i) in ids.iter().enumerate() {
            targets.row_mut(r).copy_from_slice(&train[i].1);
        }
        let mut t = Tape::new();
        let pred = model.forward(shared, &mut t, &batch);
        let tv = t.leaf(targets);
        let mse = t.mse(pred, tv);
        // weight so the micro losses sum to the mini-batch MSE
        let loss = t.scale(mse, ids.len() as f32 / total);
        t.backward(loss);
        (t.value(loss).item(), shared.grads_of(&t))
    });
    let mut batch_loss = 0.0f32;
    let mut grads: Option<GradSet> = None;
    for (l, g) in parts {
        batch_loss += l;
        match &mut grads {
            Some(acc) => acc.accumulate(&g),
            slot @ None => *slot = Some(g),
        }
    }
    if let Some(g) = grads {
        store.adam_step_with(g, adam);
    }
    batch_loss
}

/// Trains `model` on `(graph, target-vector)` pairs with MSE loss.
///
/// Targets are used as-is: callers that want log-space training (as the QoR
/// pipeline does) transform targets before calling and predictions after.
///
/// # Panics
///
/// Panics if `train` is empty or target widths mismatch the model output.
pub fn train_regression(
    store: &mut ParamStore,
    model: &RegressionModel,
    train: &[(GraphData, Vec<f32>)],
    val: &[(GraphData, Vec<f32>)],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!train.is_empty(), "empty training set");
    let sp = obs::span("train_regression");
    sp.attr("samples", train.len());
    sp.attr("val_samples", val.len());
    sp.attr("epochs", cfg.epochs);
    sp.attr("batch_size", cfg.batch_size);
    let out_dim = model.out_dim();
    for (_, y) in train.iter().chain(val) {
        assert_eq!(y.len(), out_dim, "target width mismatch");
    }

    let mut rng = init::seeded_rng(cfg.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best_val = f32::INFINITY;
    let mut stall = 0usize;
    let mut final_loss = f32::NAN;
    let mut epochs_run = 0;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        // step LR schedule: 1x -> 0.3x -> 0.1x, with gradient clipping
        let frac = (epoch as f32 + 0.5) / cfg.epochs.max(1) as f32;
        let decay = if frac < 0.6 {
            1.0
        } else if frac < 0.85 {
            0.3
        } else {
            0.1
        };
        let adam = AdamConfig {
            lr: cfg.lr * decay,
            weight_decay: cfg.weight_decay,
            clip: 2.0,
            ..AdamConfig::default()
        };
        epochs_run = epoch + 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            epoch_loss += step_minibatch(store, model, train, chunk, out_dim, &adam);
            batches += 1;
        }
        final_loss = epoch_loss / batches.max(1) as f32;
        epoch_losses.push(final_loss);
        obs::metrics::series_push("train/loss", epoch as u64, f64::from(final_loss));

        if !val.is_empty() {
            let vm = eval_mape(store, model, val);
            obs::metrics::series_push("train/val_mape", epoch as u64, f64::from(vm));
            if vm < best_val - 1e-4 {
                best_val = vm;
                stall = 0;
            } else {
                stall += 1;
            }
            if cfg.log_every > 0 && epoch % cfg.log_every == 0 {
                obs::tracef!(
                    1,
                    "epoch {epoch}: train_mse={final_loss:.5} val_mape={vm:.2}%"
                );
            }
            if cfg.patience > 0 && stall >= cfg.patience {
                break;
            }
        } else if cfg.log_every > 0 && epoch % cfg.log_every == 0 {
            obs::tracef!(1, "epoch {epoch}: train_mse={final_loss:.5}");
        }
    }
    sp.attr("epochs_run", epochs_run);

    TrainReport {
        final_loss,
        best_val_mape: if val.is_empty() { f32::NAN } else { best_val },
        epochs_run,
        epoch_losses,
    }
}

/// Model-space MAPE of `model` over a labeled set.
pub fn eval_mape(
    store: &ParamStore,
    model: &RegressionModel,
    data: &[(GraphData, Vec<f32>)],
) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let chunks: Vec<&[(GraphData, Vec<f32>)]> = data.chunks(64).collect();
    let parts = par::map("gnn/eval_mape", &chunks, |_, chunk| {
        let graphs: Vec<&GraphData> = chunk.iter().map(|(g, _)| g).collect();
        let out = model.predict(store, &graphs);
        let mut preds = Vec::new();
        let mut targets = Vec::new();
        for (r, (_, y)) in chunk.iter().enumerate() {
            preds.extend_from_slice(out.row(r));
            targets.extend_from_slice(y);
        }
        (preds, targets)
    });
    let mut preds = Vec::new();
    let mut targets = Vec::new();
    for (p, t) in parts {
        preds.extend(p);
        targets.extend(t);
    }
    mape(&preds, &targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convs::ConvKind;

    /// Synthetic task: predict the number of nodes and total edge count of
    /// random path graphs — learnable from structure alone.
    fn synth_dataset(n: usize, seed: u64) -> Vec<(GraphData, Vec<f32>)> {
        let mut rng = init::seeded_rng(seed);
        use rand::Rng;
        (0..n)
            .map(|_| {
                let nodes = rng.gen_range(3..10usize);
                let x = Matrix::from_fn(nodes, 2, |r, _| 0.1 * r as f32 + 0.5);
                let src: Vec<u32> = (0..nodes as u32 - 1).collect();
                let dst: Vec<u32> = (1..nodes as u32).collect();
                let y = vec![nodes as f32 / 10.0];
                (GraphData::new(x, src, dst), y)
            })
            .collect()
    }

    #[test]
    fn regression_learns_graph_size() {
        let train = synth_dataset(60, 1);
        let val = synth_dataset(20, 2);
        let mut store = ParamStore::new();
        let model = RegressionModel::new(
            &mut store,
            &EncoderConfig::new(ConvKind::Sage, 2, 8),
            0,
            1,
            7,
        );
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let report = train_regression(&mut store, &model, &train, &val, &cfg);
        assert!(
            report.best_val_mape < 12.0,
            "val MAPE too high: {}",
            report.best_val_mape
        );
    }

    #[test]
    fn graph_features_reach_head() {
        // target equals the graph-level feature: trivially learnable only if
        // g_feats are plumbed through
        let mut data = Vec::new();
        for i in 0..40 {
            let x = Matrix::zeros(3, 2);
            let mut g = GraphData::new(x, vec![0, 1], vec![1, 2]);
            let f = (i % 7) as f32 / 7.0;
            g.g_feats = vec![f];
            data.push((g, vec![f]));
        }
        let mut store = ParamStore::new();
        let model = RegressionModel::new(
            &mut store,
            &EncoderConfig::new(ConvKind::Gcn, 2, 4),
            1,
            1,
            3,
        );
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 8,
            lr: 1e-2,
            ..TrainConfig::default()
        };
        let report = train_regression(&mut store, &model, &data, &data, &cfg);
        assert!(
            report.best_val_mape < 8.0,
            "val MAPE too high: {}",
            report.best_val_mape
        );
    }

    #[test]
    fn early_stopping_halts() {
        let train = synth_dataset(10, 3);
        let val = synth_dataset(5, 4);
        let mut store = ParamStore::new();
        let model = RegressionModel::new(
            &mut store,
            &EncoderConfig::new(ConvKind::Gcn, 2, 4),
            0,
            1,
            1,
        );
        let cfg = TrainConfig {
            epochs: 500,
            batch_size: 8,
            lr: 0.0, // no progress => patience should trigger
            patience: 3,
            ..TrainConfig::default()
        };
        let report = train_regression(&mut store, &model, &train, &val, &cfg);
        assert!(report.epochs_run <= 10);
    }
}
