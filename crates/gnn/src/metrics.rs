//! Regression quality metrics.

/// Mean absolute percentage error, in percent.
///
/// Targets with absolute value below `1e-6` are skipped to avoid division by
/// zero; if all targets are skipped the result is `0.0`.
///
/// # Example
///
/// ```
/// let m = gnn::mape(&[110.0, 90.0], &[100.0, 100.0]);
/// assert!((m - 10.0).abs() < 1e-4);
/// ```
pub fn mape(pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len(), "mape length mismatch");
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&p, &t) in pred.iter().zip(target) {
        if t.abs() > 1e-6 {
            acc += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * acc / n as f32
    }
}

/// Root mean squared error.
///
/// # Example
///
/// ```
/// let e = gnn::rmse(&[3.0], &[0.0]);
/// assert!((e - 3.0).abs() < 1e-6);
/// ```
pub fn rmse(pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len(), "rmse length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let mse: f32 = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f32>()
        / pred.len() as f32;
    mse.sqrt()
}

/// Coefficient of determination (R²).
///
/// Returns `0.0` when the target variance is zero.
pub fn r_squared(pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len(), "r2 length mismatch");
    if target.is_empty() {
        return 0.0;
    }
    let mean = target.iter().sum::<f32>() / target.len() as f32;
    let ss_tot: f32 = target.iter().map(|&t| (t - mean) * (t - mean)).sum();
    let ss_res: f32 = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    if ss_tot <= 1e-12 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_metrics() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let m = mape(&[5.0, 110.0], &[0.0, 100.0]);
        assert!((m - 10.0).abs() < 1e-4);
    }

    #[test]
    fn r_squared_of_mean_predictor_is_zero() {
        let target = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&pred, &target).abs() < 1e-6);
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(mape(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(r_squared(&[], &[]), 0.0);
    }

    #[test]
    fn mape_with_all_zero_targets_is_zero() {
        // every target below the 1e-6 guard is skipped; nothing remains
        let m = mape(&[1.0, -2.0, 3.0], &[0.0, 0.0, 5e-7]);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn mape_is_finite_for_tiny_but_countable_targets() {
        let m = mape(&[2e-6], &[1e-5]);
        assert!(m.is_finite());
        assert!((m - 80.0).abs() < 1e-3);
    }

    #[test]
    fn r_squared_constant_target_is_zero() {
        // zero target variance: R² is defined as 0 rather than -inf/NaN
        let target = [4.0, 4.0, 4.0, 4.0];
        assert_eq!(r_squared(&[4.0, 4.0, 4.0, 4.0], &target), 0.0);
        assert_eq!(r_squared(&[0.0, 1.0, 2.0, 3.0], &target), 0.0);
    }

    #[test]
    fn r_squared_can_be_negative_for_bad_predictors() {
        let target = [1.0, 2.0, 3.0];
        let pred = [30.0, -10.0, 50.0];
        assert!(r_squared(&pred, &target) < 0.0);
    }

    #[test]
    fn rmse_single_element() {
        assert!((rmse(&[1.5], &[1.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mape length mismatch")]
    fn mape_length_mismatch_panics() {
        mape(&[1.0], &[1.0, 2.0]);
    }
}
