//! Graph convolution layers: GCN, GraphSAGE, GAT, TransformerConv, PNA.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use rand::rngs::StdRng;

use tensor::{init, Matrix, ParamStore, Tape, Var};

use crate::graph::Batch;
use crate::layers::Linear;

/// The propagation-layer families evaluated in the paper (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvKind {
    /// Graph convolutional network (Kipf & Welling).
    Gcn,
    /// Graph attention network (Veličković et al.).
    Gat,
    /// GraphSAGE with mean aggregation (Hamilton et al.).
    Sage,
    /// Unified message-passing transformer convolution (Shi et al.).
    Transformer,
    /// Principal neighbourhood aggregation (Corso et al.).
    Pna,
}

impl ConvKind {
    /// All layer kinds, in the order Table III reports them.
    pub fn all() -> [ConvKind; 5] {
        [
            ConvKind::Gcn,
            ConvKind::Gat,
            ConvKind::Sage,
            ConvKind::Transformer,
            ConvKind::Pna,
        ]
    }

    /// Stable one-byte serialization code (checkpoint format).
    ///
    /// Codes are append-only: existing values must never be renumbered, or
    /// previously written checkpoints would silently change architecture.
    pub fn code(self) -> u8 {
        match self {
            ConvKind::Gcn => 0,
            ConvKind::Gat => 1,
            ConvKind::Sage => 2,
            ConvKind::Transformer => 3,
            ConvKind::Pna => 4,
        }
    }

    /// Inverse of [`ConvKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<ConvKind> {
        ConvKind::all().into_iter().find(|k| k.code() == code)
    }
}

impl fmt::Display for ConvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConvKind::Gcn => "GCN",
            ConvKind::Gat => "GAT",
            ConvKind::Sage => "GraphSage",
            ConvKind::Transformer => "Transformer",
            ConvKind::Pna => "PNA",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`ConvKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConvKindError(String);

impl fmt::Display for ParseConvKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown GNN conv kind: {:?}", self.0)
    }
}

impl std::error::Error for ParseConvKindError {}

impl FromStr for ConvKind {
    type Err = ParseConvKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gcn" => Ok(ConvKind::Gcn),
            "gat" => Ok(ConvKind::Gat),
            "sage" | "graphsage" => Ok(ConvKind::Sage),
            "transformer" | "transformerconv" => Ok(ConvKind::Transformer),
            "pna" => Ok(ConvKind::Pna),
            other => Err(ParseConvKindError(other.to_string())),
        }
    }
}

/// One propagation layer of any [`ConvKind`].
#[derive(Debug, Clone)]
enum Conv {
    Gcn {
        lin: Linear,
    },
    Sage {
        self_lin: Linear,
        neigh_lin: Linear,
    },
    Gat {
        // two attention heads, each producing out_dim/2 features
        heads: Vec<GatHead>,
    },
    Transformer {
        heads: Vec<TransformerHead>,
        skip: Linear,
    },
    Pna {
        pre: Linear,
        post: Linear,
    },
}

#[derive(Debug, Clone)]
struct GatHead {
    lin: Linear,
    att_src: tensor::ParamId,
    att_dst: tensor::ParamId,
}

#[derive(Debug, Clone)]
struct TransformerHead {
    q: Linear,
    k: Linear,
    v: Linear,
}

const GAT_HEADS: usize = 2;
const TRANSFORMER_HEADS: usize = 2;
/// PNA aggregators (mean, max, min, std) x scalers (id, amp, att).
const PNA_EXPANSION: usize = 12;

impl Conv {
    fn new(
        store: &mut ParamStore,
        name: &str,
        kind: ConvKind,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        match kind {
            ConvKind::Gcn => Conv::Gcn {
                lin: Linear::new(store, &format!("{name}.gcn"), in_dim, out_dim, rng),
            },
            ConvKind::Sage => Conv::Sage {
                self_lin: Linear::new(store, &format!("{name}.sage_self"), in_dim, out_dim, rng),
                neigh_lin: Linear::new(store, &format!("{name}.sage_neigh"), in_dim, out_dim, rng),
            },
            ConvKind::Gat => {
                let head_dim = (out_dim / GAT_HEADS).max(1);
                let heads = (0..GAT_HEADS)
                    .map(|h| GatHead {
                        lin: Linear::new(store, &format!("{name}.gat{h}"), in_dim, head_dim, rng),
                        att_src: store.add(
                            format!("{name}.gat{h}.att_src"),
                            init::xavier(rng, head_dim, 1),
                        ),
                        att_dst: store.add(
                            format!("{name}.gat{h}.att_dst"),
                            init::xavier(rng, head_dim, 1),
                        ),
                    })
                    .collect();
                Conv::Gat { heads }
            }
            ConvKind::Transformer => {
                let head_dim = (out_dim / TRANSFORMER_HEADS).max(1);
                let heads = (0..TRANSFORMER_HEADS)
                    .map(|h| TransformerHead {
                        q: Linear::new(store, &format!("{name}.tr{h}.q"), in_dim, head_dim, rng),
                        k: Linear::new(store, &format!("{name}.tr{h}.k"), in_dim, head_dim, rng),
                        v: Linear::new(store, &format!("{name}.tr{h}.v"), in_dim, head_dim, rng),
                    })
                    .collect();
                Conv::Transformer {
                    heads,
                    skip: Linear::new(store, &format!("{name}.tr.skip"), in_dim, out_dim, rng),
                }
            }
            ConvKind::Pna => Conv::Pna {
                pre: Linear::new(store, &format!("{name}.pna_pre"), in_dim, out_dim, rng),
                post: Linear::new(
                    store,
                    &format!("{name}.pna_post"),
                    out_dim * PNA_EXPANSION + in_dim,
                    out_dim,
                    rng,
                ),
            },
        }
    }

    fn out_dim(&self) -> usize {
        match self {
            Conv::Gcn { lin } => lin.out_dim(),
            Conv::Sage { self_lin, .. } => self_lin.out_dim(),
            Conv::Gat { heads } => heads.iter().map(|h| h.lin.out_dim()).sum(),
            Conv::Transformer { skip, .. } => skip.out_dim(),
            Conv::Pna { post, .. } => post.out_dim(),
        }
    }

    fn forward(&self, store: &ParamStore, t: &mut Tape, x: Var, batch: &Batch) -> Var {
        let n = batch.num_nodes();
        match self {
            Conv::Gcn { lin } => {
                let xw = lin.forward(store, t, x);
                let msgs = t.gather_rows(xw, Arc::clone(&batch.gcn_src));
                let coef = t.leaf(batch.gcn_coef.clone());
                let weighted = t.mul_col(msgs, coef);
                t.scatter_add_rows(weighted, Arc::clone(&batch.gcn_dst), n)
            }
            Conv::Sage {
                self_lin,
                neigh_lin,
            } => {
                let own = self_lin.forward(store, t, x);
                let gathered = t.gather_rows(x, Arc::clone(&batch.src));
                let mean = t.segment_mean(gathered, Arc::clone(&batch.dst), n);
                let neigh = neigh_lin.forward(store, t, mean);
                t.add(own, neigh)
            }
            Conv::Gat { heads } => {
                let mut outs = Vec::with_capacity(heads.len());
                for head in heads {
                    let xw = head.lin.forward(store, t, x);
                    let a_src = t.param(store, head.att_src);
                    let a_dst = t.param(store, head.att_dst);
                    let alpha_src = t.matmul(xw, a_src); // [N,1]
                    let alpha_dst = t.matmul(xw, a_dst); // [N,1]
                    let es = t.gather_rows(alpha_src, Arc::clone(&batch.src));
                    let ed = t.gather_rows(alpha_dst, Arc::clone(&batch.dst));
                    let logits_raw = t.add(es, ed);
                    let logits = t.leaky_relu(logits_raw, 0.2);
                    let att = t.segment_softmax(logits, Arc::clone(&batch.dst), n);
                    let msgs = t.gather_rows(xw, Arc::clone(&batch.src));
                    let weighted = t.mul_col(msgs, att);
                    outs.push(t.scatter_add_rows(weighted, Arc::clone(&batch.dst), n));
                }
                t.concat_cols(&outs)
            }
            Conv::Transformer { heads, skip } => {
                let mut outs = Vec::with_capacity(heads.len());
                for head in heads {
                    let q = head.q.forward(store, t, x);
                    let k = head.k.forward(store, t, x);
                    let v = head.v.forward(store, t, x);
                    let qd = t.gather_rows(q, Arc::clone(&batch.dst));
                    let ks = t.gather_rows(k, Arc::clone(&batch.src));
                    let qk = t.mul(qd, ks);
                    let dots = t.sum_cols(qk);
                    let scale = 1.0 / (head.q.out_dim() as f32).sqrt();
                    let logits = t.scale(dots, scale);
                    let att = t.segment_softmax(logits, Arc::clone(&batch.dst), n);
                    let msgs = t.gather_rows(v, Arc::clone(&batch.src));
                    let weighted = t.mul_col(msgs, att);
                    outs.push(t.scatter_add_rows(weighted, Arc::clone(&batch.dst), n));
                }
                let attended = t.concat_cols(&outs);
                let skipped = skip.forward(store, t, x);
                t.add(attended, skipped)
            }
            Conv::Pna { pre, post } => {
                let h = pre.forward(store, t, x);
                let msgs = t.gather_rows(h, Arc::clone(&batch.src));
                // aggregators over incoming messages
                let mean = t.segment_mean(msgs, Arc::clone(&batch.dst), n);
                let maxv = t.segment_max(msgs, Arc::clone(&batch.dst), n);
                let neg = t.scale(msgs, -1.0);
                let negmax = t.segment_max(neg, Arc::clone(&batch.dst), n);
                let minv = t.scale(negmax, -1.0);
                let sq = t.mul(msgs, msgs);
                let mean_sq = t.segment_mean(sq, Arc::clone(&batch.dst), n);
                let mean2 = t.mul(mean, mean);
                let var = t.sub(mean_sq, mean2);
                let var_pos = t.relu(var);
                let std = t.sqrt(var_pos, 1e-6);
                // degree scalers: identity, amplification, attenuation
                let (amp, att) = degree_scalers(&batch.in_deg);
                let amp_v = t.leaf(amp);
                let att_v = t.leaf(att);
                let mut parts = Vec::with_capacity(PNA_EXPANSION + 1);
                for agg in [mean, maxv, minv, std] {
                    parts.push(agg);
                    parts.push(t.mul_col(agg, amp_v));
                    parts.push(t.mul_col(agg, att_v));
                }
                parts.push(x); // self features
                let cat = t.concat_cols(&parts);
                post.forward(store, t, cat)
            }
        }
    }
}

/// PNA amplification/attenuation scalers `log(d+1)/delta` and
/// `delta/log(d+1)` with `delta` the batch-average `log(d+1)`.
fn degree_scalers(in_deg: &[f32]) -> (Matrix, Matrix) {
    let logs: Vec<f32> = in_deg.iter().map(|d| (d + 1.0).ln()).collect();
    let delta = (logs.iter().sum::<f32>() / logs.len().max(1) as f32).max(1e-3);
    let amp = Matrix::col_vector(&logs.iter().map(|l| l / delta).collect::<Vec<_>>());
    let att = Matrix::col_vector(&logs.iter().map(|l| delta / l.max(1e-3)).collect::<Vec<_>>());
    (amp, att)
}

/// Configuration of a GNN encoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Propagation-layer family.
    pub conv: ConvKind,
    /// Node feature dimension.
    pub in_dim: usize,
    /// Hidden width of each propagation layer.
    pub hidden: usize,
    /// Number of propagation layers (the paper uses three).
    pub layers: usize,
}

impl EncoderConfig {
    /// Three-layer encoder, as in the paper.
    pub fn new(conv: ConvKind, in_dim: usize, hidden: usize) -> Self {
        EncoderConfig {
            conv,
            in_dim,
            hidden,
            layers: 3,
        }
    }
}

/// A stack of propagation layers plus sum ⊕ max pooling.
///
/// # Example
///
/// ```
/// use gnn::{Batch, ConvKind, Encoder, EncoderConfig, GraphData};
/// use tensor::{init, Matrix, ParamStore, Tape};
///
/// let mut store = ParamStore::new();
/// let mut rng = init::seeded_rng(0);
/// let enc = Encoder::new(&mut store, "enc", &EncoderConfig::new(ConvKind::Gcn, 3, 8), &mut rng);
/// let g = GraphData::new(Matrix::zeros(4, 3), vec![0, 1, 2], vec![1, 2, 3]);
/// let batch = Batch::from_graphs(&[&g], true);
/// let mut tape = Tape::new();
/// let pooled = enc.forward_pooled(&store, &mut tape, &batch);
/// assert_eq!(tape.value(pooled).shape(), (1, 17)); // mean ⊕ max ⊕ size
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    convs: Vec<Conv>,
    config: EncoderConfig,
}

impl Encoder {
    /// Builds an encoder; parameters are registered in `store` under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        config: &EncoderConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(config.layers >= 1, "encoder needs at least one layer");
        let mut convs = Vec::with_capacity(config.layers);
        let mut dim = config.in_dim;
        for i in 0..config.layers {
            let conv = Conv::new(
                store,
                &format!("{name}.conv{i}"),
                config.conv,
                dim,
                config.hidden,
                rng,
            );
            dim = conv.out_dim();
            convs.push(conv);
        }
        Encoder {
            convs,
            config: *config,
        }
    }

    /// Node embeddings after all propagation layers, `[num_nodes, hidden]`.
    pub fn forward_nodes(&self, store: &ParamStore, t: &mut Tape, batch: &Batch) -> Var {
        let mut h = t.leaf(batch.x.clone());
        for conv in &self.convs {
            h = conv.forward(store, t, h, batch);
            h = t.relu(h);
        }
        h
    }

    /// Graph embeddings via mean ⊕ max pooling plus a log-size feature,
    /// `[n_graphs, 2 * hidden + 1]`.
    ///
    /// Mean pooling keeps embedding magnitudes size-independent (so deep
    /// regression heads stay numerically stable); the explicit
    /// `log(1 + num_nodes)` column restores the graph-size signal a sum
    /// pool would carry.
    pub fn forward_pooled(&self, store: &ParamStore, t: &mut Tape, batch: &Batch) -> Var {
        let nodes = self.forward_nodes(store, t, batch);
        let mean = t.segment_mean(nodes, Arc::clone(&batch.graph_of_node), batch.n_graphs);
        let max = t.segment_max(nodes, Arc::clone(&batch.graph_of_node), batch.n_graphs);
        let mut counts = vec![0u32; batch.n_graphs];
        for &g in batch.graph_of_node.iter() {
            counts[g as usize] += 1;
        }
        let sizes = Matrix::col_vector(
            &counts
                .iter()
                .map(|&c| (c as f32 + 1.0).ln())
                .collect::<Vec<_>>(),
        );
        let size_var = t.leaf(sizes);
        t.concat_cols(&[mean, max, size_var])
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Dimension of the pooled graph embedding.
    pub fn pooled_dim(&self) -> usize {
        2 * self.convs.last().expect("non-empty").out_dim() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphData;

    fn toy_batch() -> Batch {
        let g1 = GraphData::new(
            Matrix::from_fn(4, 3, |r, c| (r as f32 * 0.3) - (c as f32 * 0.2)),
            vec![0, 1, 2, 0],
            vec![1, 2, 3, 3],
        );
        let g2 = GraphData::new(
            Matrix::from_fn(3, 3, |r, c| (r + c) as f32 * 0.1),
            vec![0, 1],
            vec![1, 2],
        );
        Batch::from_graphs(&[&g1, &g2], true)
    }

    #[test]
    fn all_convs_produce_expected_shapes() {
        let batch = toy_batch();
        for kind in ConvKind::all() {
            let mut store = ParamStore::new();
            let mut rng = init::seeded_rng(11);
            let enc = Encoder::new(&mut store, "e", &EncoderConfig::new(kind, 3, 8), &mut rng);
            let mut t = Tape::new();
            let pooled = enc.forward_pooled(&store, &mut t, &batch);
            assert_eq!(
                t.value(pooled).shape(),
                (2, enc.pooled_dim()),
                "bad pooled shape for {kind}"
            );
            assert!(
                t.value(pooled).as_slice().iter().all(|v| v.is_finite()),
                "non-finite embedding for {kind}"
            );
        }
    }

    #[test]
    fn all_convs_are_trainable() {
        // one gradient step must change the pooled embedding
        let batch = toy_batch();
        for kind in ConvKind::all() {
            let mut store = ParamStore::new();
            let mut rng = init::seeded_rng(23);
            let enc = Encoder::new(&mut store, "e", &EncoderConfig::new(kind, 3, 8), &mut rng);
            let before = {
                let mut t = Tape::new();
                let pooled = enc.forward_pooled(&store, &mut t, &batch);
                t.value(pooled).clone()
            };
            let mut t = Tape::new();
            let pooled = enc.forward_pooled(&store, &mut t, &batch);
            let target = t.leaf(Matrix::full(2, enc.pooled_dim(), 1.0));
            let loss = t.mse(pooled, target);
            t.backward(loss);
            store.adam_step(&t, &tensor::AdamConfig::with_lr(0.05));
            let after = {
                let mut t = Tape::new();
                let pooled = enc.forward_pooled(&store, &mut t, &batch);
                t.value(pooled).clone()
            };
            assert!(
                before.sub(&after).norm() > 1e-6,
                "params did not move for {kind}"
            );
        }
    }

    #[test]
    fn conv_kind_round_trips_through_str() {
        for kind in ConvKind::all() {
            let parsed: ConvKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<ConvKind>().is_err());
    }

    #[test]
    fn conv_kind_codes_round_trip_and_are_stable() {
        for kind in ConvKind::all() {
            assert_eq!(ConvKind::from_code(kind.code()), Some(kind));
        }
        // the on-disk contract: these exact numbers are in checkpoints
        assert_eq!(ConvKind::Gcn.code(), 0);
        assert_eq!(ConvKind::Sage.code(), 2);
        assert_eq!(ConvKind::Pna.code(), 4);
        assert_eq!(ConvKind::from_code(250), None);
    }

    #[test]
    fn degree_scalers_balance() {
        let (amp, att) = degree_scalers(&[1.0, 1.0, 1.0]);
        for i in 0..3 {
            assert!((amp[(i, 0)] - 1.0).abs() < 1e-5);
            assert!((att[(i, 0)] - 1.0).abs() < 1e-5);
        }
    }
}
