//! Property tests over the grammar-driven generator: every program in
//! `synthetic_corpus` must clear the whole static pipeline — parse, sema,
//! HIR lowering, CDFG construction — and expose a non-empty pragma design
//! space through `design_space(..).enumerate()`. The property holds for
//! hundreds of seeds and is byte-identical at `QOR_THREADS=1` and `4`.

/// One seed's property check; returns a digest-friendly summary line.
fn check_seed(seed: u64) -> String {
    let source = kernels::synthetic_kernel(seed);
    let top = format!("synth{seed}");
    let program = frontc::parse(&source).unwrap_or_else(|e| {
        panic!("seed {seed}: front-end rejected generated program: {e}\n{source}")
    });
    let module = hir::lower(&program).unwrap_or_else(|e| {
        panic!("seed {seed}: lowering rejected generated program: {e}\n{source}")
    });
    let func = module
        .function(&top)
        .unwrap_or_else(|| panic!("seed {seed}: generated program lost its top function"));
    assert!(
        !func.loops().is_empty(),
        "seed {seed}: generated program has no loops\n{source}"
    );

    let graph = cdfg::GraphBuilder::new(func, &pragma::PragmaConfig::default()).build();
    assert!(graph.num_nodes() > 0, "seed {seed}: empty CDFG\n{source}");

    // pragma round-trip: the design space must enumerate at least the
    // baseline configuration, and every source pragma must survive lowering
    let space = kernels::design_space(func);
    let configs = space.enumerate_capped(64);
    assert!(
        !configs.is_empty(),
        "seed {seed}: empty design space\n{source}"
    );

    format!(
        "{seed}:{}:{}:{}",
        func.loops().len(),
        graph.num_nodes(),
        configs.len()
    )
}

#[test]
fn corpus_clears_the_static_pipeline_for_500_seeds() {
    let seeds: Vec<u64> = (0..500).collect();
    let lines = par::map("synth_property", &seeds, |_, &s| check_seed(s));
    assert_eq!(lines.len(), 500);
}

#[test]
fn property_digest_is_thread_count_independent() {
    let seeds: Vec<u64> = (1000..1100).collect();
    par::set_threads(Some(1));
    let one = par::map("synth_property_t1", &seeds, |_, &s| check_seed(s));
    par::set_threads(Some(4));
    let four = par::map("synth_property_t4", &seeds, |_, &s| check_seed(s));
    par::set_threads(None);
    assert_eq!(one, four, "results must not depend on QOR_THREADS");
}

#[test]
fn source_pragmas_survive_into_the_lowered_function() {
    // sweep until we find generated programs carrying loop pragmas, and
    // check the lowered function exposes them via source_pragmas
    let mut seen = 0;
    for seed in 0..200u64 {
        let source = kernels::synthetic_kernel(seed);
        if !source.contains("#pragma HLS pipeline") && !source.contains("#pragma HLS unroll") {
            continue;
        }
        let program = frontc::parse(&source).unwrap();
        let module = hir::lower(&program).unwrap();
        let func = module.function(&format!("synth{seed}")).unwrap();
        assert!(
            func.source_pragmas.fingerprint() != pragma::PragmaConfig::default().fingerprint(),
            "seed {seed}: source pragmas vanished during lowering\n{source}"
        );
        seen += 1;
    }
    assert!(seen >= 20, "only {seen} pragma-carrying programs in 200");
}
