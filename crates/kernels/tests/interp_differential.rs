//! Differential testing: every generated program must lower to HIR that the
//! reference interpreter can execute, and execution must be deterministic.
//!
//! This guards the whole front half of the stack (parser → sema → lowering
//! → phi construction → if-conversion) against semantic bugs: an incorrect
//! def-use chain or a mis-wired phi typically surfaces as an
//! out-of-bounds access or an unbound value here.

use hir::Memory;

#[test]
fn synthetic_corpus_executes_deterministically() {
    let mut input_dependent = 0usize;
    let corpus = kernels::synthetic_corpus(60, 31_000);
    for (name, src) in &corpus {
        let module =
            hir::lower(&frontc::parse(src).unwrap()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let func = module.function(name).expect("function present");

        let mut mem_a = Memory::seeded_for(func, 5);
        hir::execute(func, &mut mem_a).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));
        let mut mem_b = Memory::seeded_for(func, 5);
        hir::execute(func, &mut mem_b).unwrap();
        // bitwise comparison: divergent programs legitimately produce NaN,
        // and NaN != NaN would fail a value comparison
        for arr in &func.arrays {
            let a: Vec<u64> = mem_a
                .get(&arr.name)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let b: Vec<u64> = mem_b
                .get(&arr.name)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(a, b, "{name}: nondeterministic execution of {}", arr.name);
        }

        // a random program may legitimately compute a constant (the final
        // temporary can derive from literals only), but most of the corpus
        // must actually read its inputs
        let mut mem_c = Memory::seeded_for(func, 1234);
        hir::execute(func, &mut mem_c).unwrap();
        let out = &func.arrays[0].name;
        if mem_a.get(out) != mem_c.get(out) {
            input_dependent += 1;
        }
    }
    assert!(
        input_dependent * 2 > corpus.len(),
        "only {input_dependent}/{} programs read their inputs",
        corpus.len()
    );
}

#[test]
fn bundled_kernels_execute_after_lowering() {
    for k in kernels::all() {
        let func = kernels::lower_kernel(k.name).unwrap();
        let mut mem = Memory::seeded_for(&func, 7);
        if k.name == "spmv" {
            // dynamic column indices must stay in range
            mem.set("cols", (0..32 * 8).map(|i| (i % 32) as f64).collect());
        }
        hir::execute(&func, &mut mem).unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn gemm_execution_matches_reference_multiply() {
    let func = kernels::lower_kernel("gemm").unwrap();
    let n = 16usize;
    let a: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) * 0.5).collect();
    let mut mem = Memory::new();
    mem.set("a", a.clone());
    mem.set("b", b.clone());
    mem.set("c", vec![0.0; n * n]);
    hir::execute(&func, &mut mem).unwrap();

    let c = mem.get("c").unwrap();
    for i in 0..n {
        for j in 0..n {
            let expected: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
            assert!(
                (c[i * n + j] - expected).abs() < 1e-9,
                "c[{i}][{j}] = {} != {expected}",
                c[i * n + j]
            );
        }
    }
}

#[test]
fn fir_guard_condition_respected() {
    // fir's `if (n - t >= 0)` guards a speculative load; the interpreter
    // must produce exactly the guarded-sum semantics
    let func = kernels::lower_kernel("fir").unwrap();
    let input: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
    let coeff: Vec<f64> = (0..16).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let mut mem = Memory::new();
    mem.set("input", input.clone());
    mem.set("coeff", coeff.clone());
    mem.set("output", vec![0.0; 64]);
    hir::execute(&func, &mut mem).unwrap();

    let out = mem.get("output").unwrap();
    for n in 0..64usize {
        let expected: f64 = (0..16usize)
            .filter(|&t| n >= t)
            .map(|t| coeff[t] * input[n - t])
            .sum();
        assert!(
            (out[n] - expected).abs() < 1e-9,
            "output[{n}] = {} != {expected}",
            out[n]
        );
    }
}
