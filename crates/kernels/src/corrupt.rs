//! Seeded mutational corruptor for HLS-C sources.
//!
//! Takes a (usually legal) program and applies a small burst of syntactic
//! damage: truncations, span deletes/duplicates, identifier swaps, token
//! splices, bracket flips, number mangling, pragma mangling and raw garbage
//! insertion. The output is *not* expected to parse — it exists to drive the
//! crash-free gate: every corrupted program must produce a typed error or a
//! clean success from the pipeline, never a panic.
//!
//! All mutations operate on `char` vectors, so any splice point is a valid
//! UTF-8 boundary and the result is always a well-formed `String` (the
//! front-end takes `&str`; feeding it invalid UTF-8 is not a reachable
//! failure mode and is out of scope).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Tokens spliced into the source by the `TokenSplice` mutation.
const SPLICE_TOKENS: &[&str] = &[
    "for", "if", "else", "int", "float", "void", "return", "(", ")", "{", "}", "[", "]", ";", ",",
    "++", "--", "+=", "<=", "?", ":", "&&", "||", "%", "/", "*", "#pragma", "HLS", "0x", "1e999",
    "..", "\u{3bb}", "\0",
];

/// Garbage fragments for the `GarbageInsert` mutation (includes non-ASCII
/// and control characters to exercise the lexer's error paths).
const GARBAGE: &[&str] = &[
    "@#$!",
    "\"unterminated",
    "/* open comment",
    "\u{fffd}\u{fffd}",
    "\t\r\x0b",
    "12345678901234567890123456789012345678901234567890",
    "e+308e+308",
    "while(1){}",
    "a[[[[",
    "))))",
];

fn splice(chars: &mut Vec<char>, at: usize, text: &str) {
    let at = at.min(chars.len());
    for (k, c) in text.chars().enumerate() {
        chars.insert(at + k, c);
    }
}

/// Collects `[start, end)` char ranges of identifier-like words.
fn word_spans(chars: &[char]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            spans.push((start, i));
        } else {
            i += 1;
        }
    }
    spans
}

fn apply_one(rng: &mut StdRng, chars: &mut Vec<char>) {
    if chars.is_empty() {
        splice(chars, 0, "{");
        return;
    }
    let n = chars.len();
    match rng.gen_range(0..9u32) {
        // Truncate: drop the tail from a random point.
        0 => {
            let at = rng.gen_range(0..n);
            chars.truncate(at);
        }
        // Delete a span of 1..=24 chars.
        1 => {
            let at = rng.gen_range(0..n);
            let len = rng.gen_range(1..=24usize).min(n - at);
            chars.drain(at..at + len);
        }
        // Duplicate a span somewhere else.
        2 => {
            let at = rng.gen_range(0..n);
            let len = rng.gen_range(1..=16usize).min(n - at);
            let span: String = chars[at..at + len].iter().collect();
            let dst = rng.gen_range(0..=n);
            splice(chars, dst, &span);
        }
        // Swap two identifiers (type confusion, unknown names, ...).
        3 => {
            let words = word_spans(chars);
            if words.len() >= 2 {
                let a = words[rng.gen_range(0..words.len())];
                let b = words[rng.gen_range(0..words.len())];
                if a != b {
                    let (a, b) = if a.0 < b.0 { (a, b) } else { (b, a) };
                    let wa: String = chars[a.0..a.1].iter().collect();
                    let wb: String = chars[b.0..b.1].iter().collect();
                    // replace b first so a's indices stay valid
                    chars.splice(b.0..b.1, wa.chars());
                    chars.splice(a.0..a.1, wb.chars());
                }
            }
        }
        // Splice a random token.
        4 => {
            let tok = SPLICE_TOKENS[rng.gen_range(0..SPLICE_TOKENS.len())];
            let at = rng.gen_range(0..=n);
            splice(chars, at, tok);
        }
        // Flip or drop a bracket to unbalance the program.
        5 => {
            let brackets: Vec<usize> = chars
                .iter()
                .enumerate()
                .filter(|(_, c)| matches!(c, '(' | ')' | '{' | '}' | '[' | ']'))
                .map(|(i, _)| i)
                .collect();
            if let Some(&at) = brackets.get(
                rng.gen_range(0..brackets.len().max(1))
                    .min(brackets.len().saturating_sub(1)),
            ) {
                if rng.gen_bool(0.5) {
                    chars[at] = match chars[at] {
                        '(' => ')',
                        ')' => '(',
                        '{' => '}',
                        '}' => '{',
                        '[' => ']',
                        _ => '[',
                    };
                } else {
                    chars.remove(at);
                }
            }
        }
        // Mangle a number: overflow it, negate it, or make it malformed.
        6 => {
            let digits: Vec<usize> = chars
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if let Some(&at) = digits.get(
                rng.gen_range(0..digits.len().max(1))
                    .min(digits.len().saturating_sub(1)),
            ) {
                let repl = match rng.gen_range(0..4u32) {
                    0 => "99999999999999999999",
                    1 => "-1",
                    2 => "1.5.5",
                    _ => "0",
                };
                chars.remove(at);
                splice(chars, at, repl);
            }
        }
        // Mangle a pragma line (or insert a bogus one).
        7 => {
            let src: String = chars.iter().collect();
            if let Some(pos) = src.find("#pragma") {
                let at = src[..pos].chars().count();
                let repl = match rng.gen_range(0..3u32) {
                    0 => "#pragma HLS unroll factor=0",
                    1 => "#pragma HLS pipeline II=",
                    _ => "#pragma HLS nonsense",
                };
                // overwrite the "#pragma" keyword so the rest of the line trails
                chars.splice(at..at + "#pragma".chars().count(), repl.chars());
            } else {
                let at = rng.gen_range(0..=n);
                splice(chars, at, "\n#pragma HLS unroll factor=0\n");
            }
        }
        // Insert raw garbage.
        _ => {
            let g = GARBAGE[rng.gen_range(0..GARBAGE.len())];
            let at = rng.gen_range(0..=n);
            splice(chars, at, g);
        }
    }
}

/// Applies `1..=4` seeded mutations to `source`.
///
/// Deterministic: the same `(source, seed)` pair always yields the same
/// output. The result is a valid `String` but almost never a valid program.
pub fn corrupt(source: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x243f_6a88).wrapping_add(!seed));
    let mut chars: Vec<char> = source.chars().collect();
    let rounds = rng.gen_range(1..=4u32);
    for _ in 0..rounds {
        apply_one(&mut rng, &mut chars);
    }
    chars.into_iter().collect()
}

/// A corrupted variant of the seeded synthetic kernel with the same seed.
pub fn corrupted_kernel(seed: u64) -> String {
    corrupt(&crate::synthetic_kernel(seed), seed ^ 0xdead_beef)
}

/// `count` corrupted programs derived from `synthetic_corpus(count, base_seed)`.
pub fn corrupted_corpus(count: usize, base_seed: u64) -> Vec<(u64, String)> {
    (0..count as u64)
        .map(|i| (base_seed + i, corrupted_kernel(base_seed + i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_deterministic() {
        let src = crate::synthetic_kernel(3);
        assert_eq!(corrupt(&src, 99), corrupt(&src, 99));
        assert_ne!(corrupt(&src, 99), corrupt(&src, 100));
    }

    #[test]
    fn corruption_changes_the_source() {
        let mut changed = 0;
        for seed in 0..50u64 {
            let src = crate::synthetic_kernel(seed);
            if corrupt(&src, seed) != src {
                changed += 1;
            }
        }
        // identity outcomes (e.g. swap of equal words) are possible but rare
        assert!(changed >= 45, "only {changed}/50 corrupted");
    }

    #[test]
    fn corrupted_programs_mostly_fail_the_frontend() {
        let mut rejected = 0;
        for (_, src) in corrupted_corpus(60, 7) {
            if frontc::parse(&src).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected >= 30, "only {rejected}/60 rejected");
    }

    #[test]
    fn corrupted_output_is_valid_utf8_strings() {
        for (_, src) in corrupted_corpus(200, 11) {
            // would have panicked on a bad boundary already; check the
            // round-trip anyway
            assert_eq!(src, String::from_utf8(src.clone().into_bytes()).unwrap());
        }
    }
}
