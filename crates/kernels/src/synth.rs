//! Seeded, grammar-driven generator of legal HLS-C programs.
//!
//! Wu et al. (DAC'22, \[8\]) evaluate on randomly generated DFGs; GNN-DSE
//! (Sohrabizadeh et al.) relies on a compiler front-end that never fails
//! mid-search. This module supplies both needs: an unbounded corpus of
//! *legal* programs far more diverse than the 16 bundled kernels, used to
//! (a) differential-test the `frontc → hir` lowering against the reference
//! interpreter in `crates/interp`, and (b) drive the `qor-fuzz` crash-free
//! gate over the full prediction pipeline.
//!
//! # Grammar
//!
//! Each program is one `void` function built from 1–3 top-level loop-nest
//! constructs drawn from a weighted template grammar:
//!
//! - **map** — elementwise DAG over 1D/2D arrays, optional conditional
//!   (`if`/ternary) and dynamic (`(i*p) % n`) indices
//! - **reduce** — scalar accumulator over a 1–2 level nest (imperfect:
//!   init/store statements ride between loop levels), optionally guarded
//! - **stencil** — 1D 3-point or 2D 4-point neighborhoods; loop bounds are
//!   *shrunk by the tap radius* so every access is in bounds by
//!   construction
//! - **contract** — GEMM-style 3-level nest `c[i][j] += a[i][k] * b[k][j]`
//!   with the accumulator pattern making the middle level imperfect
//! - **intmap** — integer arithmetic (`+ - * / %`) over `int` arrays,
//!   exercising the shared saturating/defined-division semantics
//!
//! Arrays have rank 1–3 and mixed `int`/`float` element types; loop bounds
//! are derived from the dims of the arrays each nest touches, so accesses
//! cannot go out of bounds; every division/remainder is legal because the
//! op model defines `x/0 == x%0 == 0`. Optional pragmas (`pipeline`,
//! `unroll`, `loop_flatten`, `array_partition`) are sprinkled in to
//! exercise `pragma::enumerate` round-trips.
//!
//! Programs are small by design (worst-case iteration space ≈ 16k per
//! nest) so the differential oracle can execute thousands of them.
//!
//! The malformed counterpart lives in [`crate::corrupt`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element type of a generated array.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Elem {
    Float,
    Int,
}

impl Elem {
    fn kw(self) -> &'static str {
        match self {
            Elem::Float => "float",
            Elem::Int => "int",
        }
    }
}

#[derive(Clone)]
struct ArraySpec {
    name: String,
    elem: Elem,
    dims: Vec<usize>,
}

/// A loop variable in scope: name and *exclusive* bound (its values are
/// `0..bound`), used to build in-bounds index expressions.
#[derive(Clone)]
struct LoopVar {
    name: String,
    bound: usize,
}

struct Gen {
    rng: StdRng,
    arrays: Vec<ArraySpec>,
    /// Scalar params as (name, elem).
    scalars: Vec<(String, Elem)>,
    out: String,
    tmp: usize,
}

/// Generates one synthetic kernel.
///
/// The program is guaranteed to pass the HLS-C front-end (parse + sema),
/// lower to HIR, build a CDFG, and execute without out-of-bounds accesses:
/// a `void` function named `synth<seed>` whose loop bounds are derived
/// from the array dims it touches.
///
/// # Example
///
/// ```
/// let src = kernels::synthetic_kernel(42);
/// let program = frontc::parse(&src).expect("generated source is valid");
/// assert_eq!(program.functions.len(), 1);
/// ```
pub fn synthetic_kernel(seed: u64) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed)),
        arrays: Vec::new(),
        scalars: Vec::new(),
        out: String::new(),
        tmp: 0,
    };
    g.generate(&format!("synth{seed}"));
    g.out
}

/// Generates a corpus of `count` synthetic kernels as `(name, source)`
/// pairs, all valid HLS-C.
pub fn synthetic_corpus(count: usize, base_seed: u64) -> Vec<(String, String)> {
    (0..count)
        .map(|i| {
            let seed = base_seed + i as u64;
            (format!("synth{seed}"), synthetic_kernel(seed))
        })
        .collect()
}

impl Gen {
    // ------------------------------------------------------------ helpers

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.gen_range(0..xs.len())]
    }

    fn fresh_tmp(&mut self) -> String {
        let t = format!("t{}", self.tmp);
        self.tmp += 1;
        t
    }

    fn line(&mut self, indent: usize, s: &str) {
        for _ in 0..indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// Float arrays of the given rank (any rank if `rank` is `None`).
    fn float_arrays(&self, rank: Option<usize>) -> Vec<ArraySpec> {
        self.arrays
            .iter()
            .filter(|a| a.elem == Elem::Float && rank.is_none_or(|r| a.dims.len() == r))
            .cloned()
            .collect()
    }

    fn int_arrays(&self, rank: usize) -> Vec<ArraySpec> {
        self.arrays
            .iter()
            .filter(|a| a.elem == Elem::Int && a.dims.len() == rank)
            .cloned()
            .collect()
    }

    // ----------------------------------------------------------- topology

    fn generate(&mut self, name: &str) {
        // signature: always at least one 1D float array (every template
        // can fall back to it) plus a random mix of ranks and elem types
        let n_arrays = self.rng.gen_range(2..=5usize);
        for i in 0..n_arrays {
            let rank = if i == 0 {
                1
            } else {
                match self.rng.gen_range(0..10u32) {
                    0..=4 => 1,
                    5..=7 => 2,
                    _ => 3,
                }
            };
            let elem = if i < 2 || self.rng.gen_range(0..5u32) > 0 {
                Elem::Float
            } else {
                Elem::Int
            };
            let dims: Vec<usize> = match rank {
                1 => vec![*self.pick(&[8usize, 16, 32, 64])],
                2 => vec![*self.pick(&[4usize, 8, 16]), *self.pick(&[4usize, 8, 16])],
                _ => vec![
                    *self.pick(&[4usize, 8]),
                    *self.pick(&[4usize, 8]),
                    *self.pick(&[4usize, 8]),
                ],
            };
            self.arrays.push(ArraySpec {
                name: format!("a{i}"),
                elem,
                dims,
            });
        }
        let n_scalars = self.rng.gen_range(0..=2usize);
        for i in 0..n_scalars {
            let elem = if self.rng.gen_bool(0.5) {
                Elem::Float
            } else {
                Elem::Int
            };
            self.scalars.push((format!("s{i}"), elem));
        }

        let mut params: Vec<String> = self
            .arrays
            .iter()
            .map(|a| {
                let dims: String = a.dims.iter().map(|d| format!("[{d}]")).collect();
                format!("{} {}{dims}", a.elem.kw(), a.name)
            })
            .collect();
        params.extend(
            self.scalars
                .iter()
                .map(|(n, e)| format!("{} {n}", e.kw()))
                .collect::<Vec<_>>(),
        );
        let sig = format!("void {name}({}) {{", params.join(", "));
        self.line(0, &sig);

        // optional function-scope array_partition pragma
        if self.rng.gen_bool(0.25) {
            let a = self.pick(&self.arrays.clone()).clone();
            let kind = *self.pick(&["cyclic", "block", "complete"]);
            let dim = self.rng.gen_range(1..=a.dims.len());
            let factor = *self.pick(&[2u32, 4]);
            self.line(
                0,
                &format!(
                    "#pragma HLS array_partition variable={} {kind} factor={factor} dim={dim}",
                    a.name
                ),
            );
        }

        let n_nests = self.rng.gen_range(1..=3usize);
        for _ in 0..n_nests {
            match self.rng.gen_range(0..10u32) {
                0..=2 => self.emit_map(1),
                3 => self.emit_map(2),
                4..=5 => self.emit_reduce(),
                6 => self.emit_stencil1d(),
                7 => self.emit_stencil2d(),
                8 => self.emit_contract(),
                _ => self.emit_intmap(),
            }
        }
        if self.rng.gen_bool(0.1) {
            self.line(1, "return;");
        }
        self.line(0, "}");
    }

    fn maybe_loop_pragma(&mut self, indent: usize, innermost: bool) {
        let roll = self.rng.gen_range(0..10u32);
        match roll {
            0..=1 if innermost => {
                if self.rng.gen_bool(0.4) {
                    let ii = *self.pick(&[1u32, 2, 4]);
                    self.line(indent, &format!("#pragma HLS pipeline II={ii}"));
                } else {
                    self.line(indent, "#pragma HLS pipeline");
                }
            }
            2 => {
                let f = *self.pick(&[2u32, 4]);
                self.line(indent, &format!("#pragma HLS unroll factor={f}"));
            }
            3 if !innermost => self.line(indent, "#pragma HLS loop_flatten"),
            _ => {}
        }
    }

    // ----------------------------------------------------------- templates

    /// Elementwise map over a 1D or 2D destination, with optional
    /// conditionals and dynamic indices in the body.
    fn emit_map(&mut self, rank: usize) {
        let cands = self.float_arrays(Some(rank));
        let dst = match cands.first() {
            Some(_) => self.pick(&cands).clone(),
            None => match self.float_arrays(Some(1)).first() {
                Some(a) => a.clone(),
                None => return,
            },
        };
        let rank = dst.dims.len();
        let step = if self.rng.gen_bool(0.15) { 2 } else { 1 };
        let vars = ["i", "j"];
        let mut in_scope: Vec<LoopVar> = Vec::new();
        for (d, var) in vars.iter().take(rank).enumerate() {
            let bound = dst.dims[d];
            let s = if d == rank - 1 { step } else { 1 };
            self.line(
                1 + d,
                &format!("for (int {var} = 0; {var} < {bound}; {var} += {s}) {{"),
            );
            self.maybe_loop_pragma(2 + d, d == rank - 1);
            in_scope.push(LoopVar {
                name: var.to_string(),
                bound,
            });
        }
        let body_indent = 1 + rank;
        let dst_idx: String = in_scope
            .to_vec()
            .iter()
            .map(|v| self.index_form(v))
            .collect();

        // small DAG of float temporaries feeding the store
        let n_tmp = self.rng.gen_range(0..=2usize);
        let mut tmps = Vec::new();
        for _ in 0..n_tmp {
            let t = self.fresh_tmp();
            let e = self.float_expr(2, &in_scope, &tmps);
            self.line(body_indent, &format!("float {t} = {e};"));
            tmps.push(t);
        }
        let value = self.float_expr(2, &in_scope, &tmps);

        if self.rng.gen_bool(0.3) {
            // conditional store: both branches write the same cell
            let guard = self.guard_expr(&in_scope, &tmps);
            let alt = self.float_expr(1, &in_scope, &tmps);
            self.line(body_indent, &format!("if ({guard}) {{"));
            self.line(
                body_indent + 1,
                &format!("{}{dst_idx} = {value};", dst.name),
            );
            self.line(body_indent, "} else {");
            self.line(body_indent + 1, &format!("{}{dst_idx} = {alt};", dst.name));
            self.line(body_indent, "}");
        } else {
            let op = *self.pick(&["=", "=", "=", "+=", "*="]);
            self.line(body_indent, &format!("{}{dst_idx} {op} {value};", dst.name));
        }
        for d in (0..rank).rev() {
            self.line(1 + d, "}");
        }
    }

    /// Scalar reduction over a 1–2 level nest; the 2-level variant is an
    /// imperfect nest (init + store straddle the inner loop).
    fn emit_reduce(&mut self) {
        let two_level = self.rng.gen_bool(0.5);
        let arrs = self.float_arrays(Some(1));
        let (Some(src), Some(dst)) = (arrs.first().cloned(), arrs.last().cloned()) else {
            return;
        };
        let acc = self.fresh_tmp();
        if two_level {
            let n = dst.dims[0].min(16);
            let m = src.dims[0];
            self.line(1, &format!("for (int i = 0; i < {n}; i++) {{"));
            self.maybe_loop_pragma(2, false);
            self.line(2, &format!("float {acc} = 0.0;"));
            let outer = vec![LoopVar {
                name: "i".into(),
                bound: n,
            }];
            self.line(2, &format!("for (int j = 0; j < {m}; j++) {{"));
            self.maybe_loop_pragma(3, true);
            let mut scope = outer.clone();
            scope.push(LoopVar {
                name: "j".into(),
                bound: m,
            });
            let e = self.float_expr(2, &scope, &[]);
            if self.rng.gen_bool(0.3) {
                let guard = self.guard_expr(&scope, &[]);
                self.line(3, &format!("if ({guard}) {{ {acc} += {e}; }}"));
            } else {
                self.line(3, &format!("{acc} += {e};"));
            }
            self.line(2, "}");
            self.line(2, &format!("{}[i] = {acc};", dst.name));
            self.line(1, "}");
        } else {
            let m = src.dims[0];
            self.line(1, &format!("float {acc} = 0.0;"));
            self.line(1, &format!("for (int i = 0; i < {m}; i++) {{"));
            self.maybe_loop_pragma(2, true);
            let scope = vec![LoopVar {
                name: "i".into(),
                bound: m,
            }];
            let e = self.float_expr(2, &scope, &[]);
            let op = *self.pick(&["+=", "+=", "-="]);
            self.line(2, &format!("{acc} {op} {e};"));
            self.line(1, "}");
            let slot = self.rng.gen_range(0..dst.dims[0]);
            self.line(1, &format!("{}[{slot}] = {acc};", dst.name));
        }
    }

    /// 1D 3-point stencil; the loop bound is shrunk by the tap radius.
    fn emit_stencil1d(&mut self) {
        let arrs = self.float_arrays(Some(1));
        let Some(dst) = arrs.first().cloned() else {
            return;
        };
        let src = self.pick(&arrs).clone();
        let radius = self.rng.gen_range(1..=2usize);
        let n = dst.dims[0].min(src.dims[0]);
        let bound = n - radius; // taps reach src[i + radius]
        let taps: Vec<String> = (0..=radius)
            .map(|k| {
                let w = format!("{:.2}", self.rng.gen_range(0.1..1.5f64));
                let idx = if k == 0 {
                    "i".to_string()
                } else {
                    format!("i + {k}")
                };
                format!("{w} * {}[{idx}]", src.name)
            })
            .collect();
        self.line(1, &format!("for (int i = 0; i < {bound}; i++) {{"));
        self.maybe_loop_pragma(2, true);
        self.line(2, &format!("{}[i] = {};", dst.name, taps.join(" + ")));
        self.line(1, "}");
    }

    /// 2D 4-point stencil over rank-2 arrays (falls back to 1D when the
    /// signature has no rank-2 float arrays).
    fn emit_stencil2d(&mut self) {
        let arrs = self.float_arrays(Some(2));
        if arrs.is_empty() {
            return self.emit_stencil1d();
        }
        let dst = arrs[0].clone();
        let src = self.pick(&arrs).clone();
        let d0 = dst.dims[0].min(src.dims[0]) - 1;
        let d1 = dst.dims[1].min(src.dims[1]) - 1;
        let s = src.name.clone();
        self.line(1, &format!("for (int r = 0; r < {d0}; r++) {{"));
        self.maybe_loop_pragma(2, false);
        self.line(2, &format!("for (int c = 0; c < {d1}; c++) {{"));
        self.maybe_loop_pragma(3, true);
        self.line(
            3,
            &format!(
                "{}[r][c] = {s}[r][c] + {s}[r + 1][c] + {s}[r][c + 1] + {s}[r + 1][c + 1];",
                dst.name
            ),
        );
        self.line(2, "}");
        self.line(1, "}");
    }

    /// GEMM-style contraction: 3-level nest, imperfect at the middle
    /// level (accumulator init + store).
    fn emit_contract(&mut self) {
        let r2 = self.float_arrays(Some(2));
        if r2.len() < 2 {
            return self.emit_reduce();
        }
        let c = r2[0].clone();
        let a = self.pick(&r2).clone();
        let b = self.pick(&r2).clone();
        let ni = c.dims[0].min(a.dims[0]);
        let nj = c.dims[1].min(b.dims[1]);
        let nk = a.dims[1].min(b.dims[0]);
        let acc = self.fresh_tmp();
        self.line(1, &format!("for (int i = 0; i < {ni}; i++) {{"));
        self.maybe_loop_pragma(2, false);
        self.line(2, &format!("for (int j = 0; j < {nj}; j++) {{"));
        self.line(3, &format!("float {acc} = 0.0;"));
        self.line(3, &format!("for (int k = 0; k < {nk}; k++) {{"));
        self.maybe_loop_pragma(4, true);
        self.line(4, &format!("{acc} += {}[i][k] * {}[k][j];", a.name, b.name));
        self.line(3, "}");
        self.line(3, &format!("{}[i][j] = {acc};", c.name));
        self.line(2, "}");
        self.line(1, "}");
    }

    /// Integer map over `int` arrays: exercises the shared saturating /
    /// defined-division integer semantics end to end.
    fn emit_intmap(&mut self) {
        let ints = self.int_arrays(1);
        let Some(dst) = ints.first().cloned() else {
            // no 1D int arrays in this signature: emit a float map instead
            return self.emit_map(1);
        };
        let n = dst.dims[0];
        self.line(1, &format!("for (int i = 0; i < {n}; i++) {{"));
        self.maybe_loop_pragma(2, true);
        let scope = vec![LoopVar {
            name: "i".into(),
            bound: n,
        }];
        let e = self.int_expr(2, &scope);
        self.line(2, &format!("{}[i] = {e};", dst.name));
        self.line(1, "}");
    }

    // --------------------------------------------------------- expressions

    /// An in-bounds index expression for one destination dimension:
    /// plain `v`, reversed `(bound-1) - v`, or dynamic `(v * p) % bound`
    /// (all stay in `[0, bound)` because `0 <= v < bound <= dim`).
    fn index_form(&mut self, v: &LoopVar) -> String {
        match self.rng.gen_range(0..10u32) {
            0..=6 => format!("[{}]", v.name),
            7..=8 => format!("[{} - {}]", v.bound - 1, v.name),
            _ => format!("[({} * 3) % {}]", v.name, v.bound),
        }
    }

    /// A float-typed expression tree of bounded depth. Leaves: in-bounds
    /// array loads, scalar params, literals, temporaries.
    fn float_expr(&mut self, depth: usize, scope: &[LoopVar], tmps: &[String]) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return self.float_leaf(scope, tmps);
        }
        match self.rng.gen_range(0..10u32) {
            0..=5 => {
                let a = self.float_expr(depth - 1, scope, tmps);
                let b = self.float_expr(depth - 1, scope, tmps);
                let op = *self.pick(&["+", "-", "*", "+", "*"]);
                format!("({a} {op} {b})")
            }
            6 => {
                // division is total: x / 0.0 == 0 in the op model
                let a = self.float_expr(depth - 1, scope, tmps);
                let b = self.float_leaf(scope, tmps);
                format!("({a} / {b})")
            }
            7 => {
                let a = self.float_expr(depth - 1, scope, tmps);
                let f = *self.pick(&["sqrtf", "fabsf"]);
                format!("{f}({a})")
            }
            8 => {
                let a = self.float_expr(depth - 1, scope, tmps);
                let b = self.float_expr(depth - 1, scope, tmps);
                let f = *self.pick(&["fmaxf", "fminf"]);
                format!("{f}({a}, {b})")
            }
            _ => {
                let g = self.guard_expr(scope, tmps);
                let a = self.float_expr(depth - 1, scope, tmps);
                let b = self.float_expr(depth - 1, scope, tmps);
                format!("({g} ? {a} : {b})")
            }
        }
    }

    fn float_leaf(&mut self, scope: &[LoopVar], tmps: &[String]) -> String {
        let roll = self.rng.gen_range(0..10u32);
        if roll < 5 {
            if let Some(load) = self.load_expr(Elem::Float, scope) {
                return load;
            }
        }
        if roll < 7 && !tmps.is_empty() {
            return tmps[self.rng.gen_range(0..tmps.len())].clone();
        }
        if roll < 8 {
            let float_scalars: Vec<String> = self
                .scalars
                .iter()
                .filter(|(_, e)| *e == Elem::Float)
                .map(|(n, _)| n.clone())
                .collect();
            if !float_scalars.is_empty() {
                return float_scalars[self.rng.gen_range(0..float_scalars.len())].clone();
            }
        }
        format!("{:.2}", self.rng.gen_range(-2.0..4.0f64))
    }

    /// An in-bounds load of an array with the given element type, indexed
    /// by loop variables whose bounds fit the array's dims (constant
    /// indices fill dimensions no variable fits).
    fn load_expr(&mut self, elem: Elem, scope: &[LoopVar]) -> Option<String> {
        let cands: Vec<ArraySpec> = self
            .arrays
            .iter()
            .filter(|a| a.elem == elem)
            .cloned()
            .collect();
        if cands.is_empty() {
            return None;
        }
        let a = self.pick(&cands).clone();
        let mut idx = String::new();
        for &dim in &a.dims {
            let fits: Vec<LoopVar> = scope.iter().filter(|v| v.bound <= dim).cloned().collect();
            if fits.is_empty() || self.rng.gen_bool(0.15) {
                idx.push_str(&format!("[{}]", self.rng.gen_range(0..dim)));
            } else {
                let v = fits[self.rng.gen_range(0..fits.len())].clone();
                match self.rng.gen_range(0..8u32) {
                    0 => idx.push_str(&format!("[{} - {}]", v.bound - 1, v.name)),
                    1 => idx.push_str(&format!("[({} * 5) % {dim}]", v.name)),
                    _ => idx.push_str(&format!("[{}]", v.name)),
                }
            }
        }
        Some(format!("{}{idx}", a.name))
    }

    /// An int-typed expression tree (int loads, loop vars, literals, and
    /// `+ - * / %` — division and remainder are total in the op model).
    fn int_expr(&mut self, depth: usize, scope: &[LoopVar]) -> String {
        if depth == 0 || self.rng.gen_bool(0.4) {
            return self.int_leaf(scope);
        }
        let a = self.int_expr(depth - 1, scope);
        let b = self.int_leaf(scope);
        let op = *self.pick(&["+", "-", "*", "/", "%"]);
        format!("({a} {op} {b})")
    }

    fn int_leaf(&mut self, scope: &[LoopVar]) -> String {
        let roll = self.rng.gen_range(0..10u32);
        if roll < 4 {
            if let Some(load) = self.load_expr(Elem::Int, scope) {
                return load;
            }
        }
        if roll < 7 && !scope.is_empty() {
            return scope[self.rng.gen_range(0..scope.len())].name.clone();
        }
        if roll < 8 {
            let int_scalars: Vec<String> = self
                .scalars
                .iter()
                .filter(|(_, e)| *e == Elem::Int)
                .map(|(n, _)| n.clone())
                .collect();
            if !int_scalars.is_empty() {
                return int_scalars[self.rng.gen_range(0..int_scalars.len())].clone();
            }
        }
        format!("{}", self.rng.gen_range(1..9i32))
    }

    /// A boolean-ish guard: comparisons over loads/vars, parity tests,
    /// optionally conjoined.
    fn guard_expr(&mut self, scope: &[LoopVar], tmps: &[String]) -> String {
        let base = match self.rng.gen_range(0..4u32) {
            0 if !scope.is_empty() => {
                let v = scope[self.rng.gen_range(0..scope.len())].clone();
                format!("{} % 2 == 0", v.name)
            }
            1 if !scope.is_empty() => {
                let v = scope[self.rng.gen_range(0..scope.len())].clone();
                let mid = v.bound / 2;
                format!("{} < {mid}", v.name)
            }
            _ => {
                let a = self.float_leaf(scope, tmps);
                let cmp = *self.pick(&["<", ">", "<=", ">="]);
                format!("{a} {cmp} {:.2}", self.rng.gen_range(-1.0..2.0f64))
            }
        };
        if self.rng.gen_bool(0.2) {
            let b = self.float_leaf(scope, tmps);
            let join = *self.pick(&["&&", "||"]);
            format!("{base} {join} {b} > 0.0")
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_parseable_and_lowerable() {
        for (name, src) in synthetic_corpus(50, 1000) {
            let program = frontc::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));
            let module = hir::lower(&program).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));
            let f = module.function(&name).expect("function present");
            assert!(!f.loops().is_empty(), "{name} has no loops:\n{src}");
        }
    }

    #[test]
    fn corpus_is_diverse() {
        let corpus = synthetic_corpus(30, 7);
        let unique: std::collections::HashSet<&String> = corpus.iter().map(|(_, s)| s).collect();
        assert!(unique.len() > 25, "sources too repetitive");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(synthetic_kernel(5), synthetic_kernel(5));
        assert_ne!(synthetic_kernel(5), synthetic_kernel(6));
    }

    #[test]
    fn corpus_exercises_every_template() {
        // across a modest window the grammar should produce nests of
        // depth 1, 2 and 3, conditionals, dynamic indices, pragmas, and
        // int arrays
        let corpus = synthetic_corpus(120, 3000);
        let all: String = corpus.iter().map(|(_, s)| s.as_str()).collect();
        assert!(all.contains("for (int k"), "no 3-level contraction seen");
        assert!(all.contains("if ("), "no conditionals seen");
        assert!(all.contains("% "), "no dynamic/parity indices seen");
        assert!(all.contains("#pragma HLS"), "no pragmas seen");
        assert!(all.contains("int a"), "no int arrays seen");
    }
}
