//! Synthetic program generator.
//!
//! Wu et al. (DAC'22, \[8\]) evaluate on randomly generated DFGs and simple
//! loops without pragmas. This module reproduces that corpus style for the
//! Table IV "w/o pragma" comparison: random single/double loops whose
//! bodies are random arithmetic DAGs over array loads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates one synthetic pragma-free kernel.
///
/// The program is guaranteed to pass the HLS-C front-end: a `void` function
/// named `synth<seed>` over 2–3 float arrays, one or two loop levels, and a
/// random expression DAG of 3–10 float operations per body.
///
/// # Example
///
/// ```
/// let src = kernels::synthetic_kernel(42);
/// let program = frontc::parse(&src).expect("generated source is valid");
/// assert_eq!(program.functions.len(), 1);
/// ```
pub fn synthetic_kernel(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed));
    let name = format!("synth{seed}");
    let n = *[16usize, 32, 64]
        .get(rng.gen_range(0..3usize))
        .unwrap_or(&32);
    let n_arrays = rng.gen_range(2..=3usize);
    let arrays: Vec<String> = (0..n_arrays).map(|i| format!("a{i}")).collect();
    let two_level = rng.gen_bool(0.4);
    let inner_n = if two_level {
        rng.gen_range(4..=16usize)
    } else {
        0
    };

    let mut body = String::new();
    let depth_pad = if two_level { "        " } else { "    " };

    // random expression DAG: a chain of temporaries over random loads
    let n_ops = rng.gen_range(3..=10usize);
    let mut temps: Vec<String> = Vec::new();
    for t in 0..n_ops {
        let lhs = pick_operand(&mut rng, &arrays, &temps, n, two_level);
        let rhs = pick_operand(&mut rng, &arrays, &temps, n, two_level);
        let op = ["+", "-", "*"][rng.gen_range(0..3usize)];
        body.push_str(&format!("{depth_pad}    float t{t} = {lhs} {op} {rhs};\n"));
        temps.push(format!("t{t}"));
    }
    let result = temps.last().cloned().unwrap_or_else(|| "0.0".into());
    let out = &arrays[0];
    body.push_str(&format!("{depth_pad}    {out}[i] = {result};\n"));

    let params: Vec<String> = arrays.iter().map(|a| format!("float {a}[{n}]")).collect();
    if two_level {
        format!(
            "void {name}({}) {{\n    for (int i = 0; i < {n}; i++) {{\n        for (int j = 0; j < {inner_n}; j++) {{\n{body}        }}\n    }}\n}}\n",
            params.join(", ")
        )
    } else {
        format!(
            "void {name}({}) {{\n    for (int i = 0; i < {n}; i++) {{\n{body}    }}\n}}\n",
            params.join(", ")
        )
    }
}

fn pick_operand(
    rng: &mut StdRng,
    arrays: &[String],
    temps: &[String],
    n: usize,
    two_level: bool,
) -> String {
    let choice = rng.gen_range(0..10u32);
    if choice < 5 || temps.is_empty() {
        // array load with a simple affine index
        let a = &arrays[rng.gen_range(0..arrays.len())];
        match rng.gen_range(0..3u32) {
            0 => format!("{a}[i]"),
            // reversed access: n-1-i stays within [0, n-1] for all i
            1 => format!("{a}[{} - i]", n - 1),
            _ if two_level => format!("{a}[j]"),
            _ => format!("{a}[i]"),
        }
    } else if choice < 8 {
        temps[rng.gen_range(0..temps.len())].clone()
    } else {
        format!("{:.1}", rng.gen_range(0.5..4.0f32))
    }
}

/// Generates a corpus of `count` synthetic kernels as `(name, source)`
/// pairs, all valid HLS-C.
pub fn synthetic_corpus(count: usize, base_seed: u64) -> Vec<(String, String)> {
    (0..count)
        .map(|i| {
            let seed = base_seed + i as u64;
            (format!("synth{seed}"), synthetic_kernel(seed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_parseable_and_lowerable() {
        for (name, src) in synthetic_corpus(50, 1000) {
            let program = frontc::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));
            let module = hir::lower(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
            let f = module.function(&name).expect("function present");
            assert!(!f.loops().is_empty());
        }
    }

    #[test]
    fn corpus_is_diverse() {
        let corpus = synthetic_corpus(30, 7);
        let unique: std::collections::HashSet<&String> = corpus.iter().map(|(_, s)| s).collect();
        assert!(unique.len() > 25, "sources too repetitive");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(synthetic_kernel(5), synthetic_kernel(5));
        assert_ne!(synthetic_kernel(5), synthetic_kernel(6));
    }
}
