//! HLS-C sources of the benchmark kernels.
//!
//! Sixteen applications in the style of Polybench, MachSuite and CHStone, as
//! used by the paper (12 for training/testing, 4 held out for the DSE
//! experiment). Sizes are scaled to keep simulated sweeps laptop-friendly;
//! structures (loop nests, access patterns, recurrences, dynamic indexing)
//! mirror the originals.

/// `gemm` — dense matrix multiply (Polybench).
pub const GEMM: &str = r#"
void gemm(float a[16][16], float b[16][16], float c[16][16]) {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            float acc = 0.0;
            for (int k = 0; k < 16; k++) {
                acc += a[i][k] * b[k][j];
            }
            c[i][j] = acc;
        }
    }
}
"#;

/// `atax` — matrix times vector, then transpose times result (Polybench).
pub const ATAX: &str = r#"
void atax(float a[32][32], float x[32], float y[32], float tmp[32]) {
    for (int i = 0; i < 32; i++) {
        float acc = 0.0;
        for (int j = 0; j < 32; j++) {
            acc += a[i][j] * x[j];
        }
        tmp[i] = acc;
    }
    for (int j = 0; j < 32; j++) {
        float acc = 0.0;
        for (int i = 0; i < 32; i++) {
            acc += a[i][j] * tmp[i];
        }
        y[j] = acc;
    }
}
"#;

/// `gesummv` — scalar, vector and matrix multiplication (Polybench).
pub const GESUMMV: &str = r#"
void gesummv(float a[32][32], float b[32][32], float x[32], float y[32]) {
    for (int i = 0; i < 32; i++) {
        float s1 = 0.0;
        float s2 = 0.0;
        for (int j = 0; j < 32; j++) {
            s1 += a[i][j] * x[j];
            s2 += b[i][j] * x[j];
        }
        y[i] = 1.5 * s1 + 1.2 * s2;
    }
}
"#;

/// `k2mm` — two chained matrix multiplies (Polybench 2mm).
pub const K2MM: &str = r#"
void k2mm(float a[12][12], float b[12][12], float c[12][12], float d[12][12], float tmp[12][12]) {
    for (int i = 0; i < 12; i++) {
        for (int j = 0; j < 12; j++) {
            float acc = 0.0;
            for (int k = 0; k < 12; k++) {
                acc += a[i][k] * b[k][j];
            }
            tmp[i][j] = acc;
        }
    }
    for (int i = 0; i < 12; i++) {
        for (int j = 0; j < 12; j++) {
            float acc = 0.0;
            for (int k = 0; k < 12; k++) {
                acc += tmp[i][k] * c[k][j];
            }
            d[i][j] = d[i][j] + acc;
        }
    }
}
"#;

/// `doitgen` — multi-resolution analysis kernel (Polybench, reduced).
pub const DOITGEN: &str = r#"
void doitgen(float a[8][8][8], float c4[8][8], float sum[8]) {
    for (int r = 0; r < 8; r++) {
        for (int q = 0; q < 8; q++) {
            for (int p = 0; p < 8; p++) {
                float acc = 0.0;
                for (int s = 0; s < 8; s++) {
                    acc += a[r][q][s] * c4[s][p];
                }
                sum[p] = acc;
            }
            for (int p = 0; p < 8; p++) {
                a[r][q][p] = sum[p];
            }
        }
    }
}
"#;

/// `trmm` — triangular-style matrix multiply, rectangularized (Polybench).
pub const TRMM: &str = r#"
void trmm(float a[16][16], float b[16][16]) {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            float acc = 0.0;
            for (int k = 0; k < 16; k++) {
                acc += a[k][i] * b[k][j];
            }
            b[i][j] = b[i][j] + 0.8 * acc;
        }
    }
}
"#;

/// `fir` — finite impulse response filter (MachSuite).
pub const FIR: &str = r#"
void fir(float input[64], float coeff[16], float output[64]) {
    for (int n = 0; n < 64; n++) {
        float acc = 0.0;
        for (int t = 0; t < 16; t++) {
            if (n - t >= 0) {
                acc += coeff[t] * input[n - t];
            }
        }
        output[n] = acc;
    }
}
"#;

/// `conv1d` — one-dimensional convolution with halo (MachSuite-style).
pub const CONV1D: &str = r#"
void conv1d(float signal[64], float kernel[5], float out[60]) {
    for (int i = 0; i < 60; i++) {
        float acc = 0.0;
        for (int k = 0; k < 5; k++) {
            acc += signal[i + k] * kernel[k];
        }
        out[i] = acc;
    }
}
"#;

/// `stencil2d` — 3x3 stencil (MachSuite).
pub const STENCIL2D: &str = r#"
void stencil2d(float orig[16][16], float filt[3][3], float sol[16][16]) {
    for (int r = 0; r < 14; r++) {
        for (int c = 0; c < 14; c++) {
            float temp = 0.0;
            for (int k1 = 0; k1 < 3; k1++) {
                for (int k2 = 0; k2 < 3; k2++) {
                    temp += filt[k1][k2] * orig[r + k1][c + k2];
                }
            }
            sol[r][c] = temp;
        }
    }
}
"#;

/// `jacobi1d` — 3-point relaxation sweep (Polybench-style).
pub const JACOBI1D: &str = r#"
void jacobi1d(float a[64], float b[64]) {
    for (int i = 1; i < 63; i++) {
        b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1]);
    }
    for (int i = 1; i < 63; i++) {
        a[i] = 0.33333 * (b[i - 1] + b[i] + b[i + 1]);
    }
}
"#;

/// `spmv` — sparse matrix-vector multiply, ELLPACK format with dynamic
/// column indices (MachSuite).
pub const SPMV: &str = r#"
void spmv(float nzval[32][8], int cols[32][8], float vec[32], float out[32]) {
    for (int i = 0; i < 32; i++) {
        float sum = 0.0;
        for (int j = 0; j < 8; j++) {
            sum += nzval[i][j] * vec[cols[i][j]];
        }
        out[i] = sum;
    }
}
"#;

/// `nn_dist` — pairwise Euclidean distances (kNN/MD-style, uses `sqrtf`).
pub const NN_DIST: &str = r#"
void nn_dist(float px[32], float py[32], float pz[32], float dist[32]) {
    for (int i = 0; i < 32; i++) {
        float best = 1000000.0;
        for (int j = 0; j < 32; j++) {
            float dx = px[i] - px[j];
            float dy = py[i] - py[j];
            float dz = pz[i] - pz[j];
            float d = sqrtf(dx * dx + dy * dy + dz * dz);
            if (j != i) {
                best = fminf(best, d);
            }
        }
        dist[i] = best;
    }
}
"#;

// ----------------------------------------------------- DSE hold-out kernels

/// `bicg` — BiCG sub-kernel of BiCGStab (Polybench; DSE hold-out).
pub const BICG: &str = r#"
void bicg(float a[32][32], float s[32], float q[32], float p[32], float r[32]) {
    for (int i = 0; i < 32; i++) {
        s[i] = 0.0;
    }
    for (int i = 0; i < 32; i++) {
        float acc = 0.0;
        for (int j = 0; j < 32; j++) {
            s[j] = s[j] + r[i] * a[i][j];
            acc += a[i][j] * p[j];
        }
        q[i] = acc;
    }
}
"#;

/// `symm` — symmetric matrix multiply, rectangularized (Polybench; DSE
/// hold-out).
pub const SYMM: &str = r#"
void symm(float a[24][24], float b[24][24], float c[24][24]) {
    for (int i = 0; i < 24; i++) {
        for (int j = 0; j < 24; j++) {
            float temp = 0.0;
            for (int k = 0; k < 24; k++) {
                temp += b[k][j] * a[i][k];
            }
            c[i][j] = 0.6 * c[i][j] + 1.3 * temp;
        }
    }
}
"#;

/// `mvt` — matrix-vector product and transpose (Polybench; DSE hold-out).
pub const MVT: &str = r#"
void mvt(float a[32][32], float x1[32], float x2[32], float y1[32], float y2[32]) {
    for (int i = 0; i < 32; i++) {
        float acc = 0.0;
        for (int j = 0; j < 32; j++) {
            acc += a[i][j] * y1[j];
        }
        x1[i] = x1[i] + acc;
    }
    for (int i = 0; i < 32; i++) {
        float acc = 0.0;
        for (int j = 0; j < 32; j++) {
            acc += a[j][i] * y2[j];
        }
        x2[i] = x2[i] + acc;
    }
}
"#;

/// `syrk` — symmetric rank-k update, rectangularized (Polybench; DSE
/// hold-out).
pub const SYRK: &str = r#"
void syrk(float a[24][24], float c[24][24]) {
    for (int i = 0; i < 24; i++) {
        for (int j = 0; j < 24; j++) {
            float acc = 0.0;
            for (int k = 0; k < 24; k++) {
                acc += a[i][k] * a[j][k];
            }
            c[i][j] = 0.5 * c[i][j] + acc;
        }
    }
}
"#;
