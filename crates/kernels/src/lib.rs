#![warn(missing_docs)]
//! Benchmark kernels and their pragma design spaces.
//!
//! Sixteen applications in the style of the Polybench / MachSuite / CHStone
//! suites used by the paper: twelve for model training and testing, four
//! (bicg, symm, mvt, syrk) held out for the DSE experiment (§IV-D).
//!
//! # Example
//!
//! ```
//! let f = kernels::lower_kernel("gemm")?;
//! let space = kernels::design_space(&f);
//! assert!(space.enumerate().len() > 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod corrupt;
mod sources;
mod synth;

pub use corrupt::{corrupt, corrupted_corpus, corrupted_kernel};
pub use synth::{synthetic_corpus, synthetic_kernel};

use hir::{AccessPattern, Function, OpKind};
use pragma::{ArrayBinding, DesignSpace, LoopId};

/// Failure while parsing or lowering a bundled kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The requested kernel name is not in the bundled set.
    UnknownKernel(String),
    /// The kernel source parsed but does not define the named top function.
    MissingFunction(String),
    /// The bundled source failed the front-end.
    Front(frontc::FrontError),
    /// The checked program failed HIR lowering.
    Lower(hir::LowerError),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnknownKernel(name) => write!(f, "unknown kernel {name:?}"),
            KernelError::MissingFunction(name) => {
                write!(f, "kernel source does not define {name:?}")
            }
            KernelError::Front(e) => write!(f, "{e}"),
            KernelError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Front(e) => Some(e),
            KernelError::Lower(e) => Some(e),
            _ => None,
        }
    }
}

impl From<frontc::FrontError> for KernelError {
    fn from(e: frontc::FrontError) -> Self {
        KernelError::Front(e)
    }
}

impl From<hir::LowerError> for KernelError {
    fn from(e: hir::LowerError) -> Self {
        KernelError::Lower(e)
    }
}

/// Which benchmark suite a kernel imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Polybench linear-algebra kernels.
    Polybench,
    /// MachSuite accelerator workloads.
    MachSuite,
}

/// Role of a kernel in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Used to build the training/validation/test datasets.
    Train,
    /// Held out for the DSE experiment (unseen during training).
    Dse,
}

/// One benchmark kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel (and top function) name.
    pub name: &'static str,
    /// HLS-C source.
    pub source: &'static str,
    /// Originating suite style.
    pub suite: Suite,
    /// Experiment role.
    pub role: Role,
}

/// All sixteen kernels.
pub fn all() -> &'static [Kernel] {
    use Role::*;
    use Suite::*;
    const KERNELS: &[Kernel] = &[
        Kernel {
            name: "gemm",
            source: sources::GEMM,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "atax",
            source: sources::ATAX,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "gesummv",
            source: sources::GESUMMV,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "k2mm",
            source: sources::K2MM,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "doitgen",
            source: sources::DOITGEN,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "trmm",
            source: sources::TRMM,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "fir",
            source: sources::FIR,
            suite: MachSuite,
            role: Train,
        },
        Kernel {
            name: "conv1d",
            source: sources::CONV1D,
            suite: MachSuite,
            role: Train,
        },
        Kernel {
            name: "stencil2d",
            source: sources::STENCIL2D,
            suite: MachSuite,
            role: Train,
        },
        Kernel {
            name: "jacobi1d",
            source: sources::JACOBI1D,
            suite: Polybench,
            role: Train,
        },
        Kernel {
            name: "spmv",
            source: sources::SPMV,
            suite: MachSuite,
            role: Train,
        },
        Kernel {
            name: "nn_dist",
            source: sources::NN_DIST,
            suite: MachSuite,
            role: Train,
        },
        Kernel {
            name: "bicg",
            source: sources::BICG,
            suite: Polybench,
            role: Dse,
        },
        Kernel {
            name: "symm",
            source: sources::SYMM,
            suite: Polybench,
            role: Dse,
        },
        Kernel {
            name: "mvt",
            source: sources::MVT,
            suite: Polybench,
            role: Dse,
        },
        Kernel {
            name: "syrk",
            source: sources::SYRK,
            suite: Polybench,
            role: Dse,
        },
    ];
    KERNELS
}

/// Kernels used for training/validation/testing.
pub fn training_kernels() -> impl Iterator<Item = &'static Kernel> {
    all().iter().filter(|k| k.role == Role::Train)
}

/// Kernels held out for DSE.
pub fn dse_kernels() -> impl Iterator<Item = &'static Kernel> {
    all().iter().filter(|k| k.role == Role::Dse)
}

/// Source of a kernel by name.
pub fn kernel_source(name: &str) -> Option<&'static str> {
    all().iter().find(|k| k.name == name).map(|k| k.source)
}

/// Parses and lowers a kernel to its HIR function.
///
/// # Errors
///
/// Returns [`KernelError::UnknownKernel`] if the name is not in the bundled
/// set (or, unexpectedly, a front-end/lowering error for a bundled source).
pub fn lower_kernel(name: &str) -> Result<Function, KernelError> {
    let sp = obs::span("kernel_lower");
    sp.attr("kernel", name);
    let src = kernel_source(name).ok_or_else(|| KernelError::UnknownKernel(name.to_string()))?;
    let program = frontc::parse(src)?;
    let module = hir::lower(&program)?;
    let f = module
        .function(name)
        .ok_or_else(|| KernelError::MissingFunction(name.to_string()))?;
    Ok(f.clone())
}

/// Derives the pragma design space of a function: the loop-shape tree plus
/// array-partition bindings inferred from affine access patterns.
///
/// A binding ties array dimension `d` to the loop whose induction variable
/// most frequently indexes that dimension (so partitioning follows the
/// unroll factor, as the paper's DSE does).
pub fn design_space(func: &Function) -> DesignSpace {
    let roots = hir::loop_shapes(func);
    let arrays: Vec<(String, Vec<usize>)> = func
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.dims.clone()))
        .collect();

    // vote: (array, dim) -> loop -> count
    let mut votes: std::collections::BTreeMap<
        (String, u32),
        std::collections::BTreeMap<LoopId, usize>,
    > = Default::default();
    for op in &func.ops {
        let (array, access) = match &op.kind {
            OpKind::Load { array, access } | OpKind::Store { array, access } => (array, access),
            _ => continue,
        };
        let AccessPattern::Affine(dims) = access else {
            continue;
        };
        for (d, idx) in dims.iter().enumerate() {
            for (l, c) in &idx.terms {
                if *c != 0 {
                    *votes
                        .entry((array.clone(), d as u32 + 1))
                        .or_default()
                        .entry(l.clone())
                        .or_insert(0) += 1;
                }
            }
        }
    }
    let bindings: Vec<ArrayBinding> = votes
        .into_iter()
        .filter_map(|((array, dim), by_loop)| {
            by_loop
                .into_iter()
                .max_by_key(|(_, n)| *n)
                .map(|(loop_id, _)| ArrayBinding {
                    array,
                    dim,
                    loop_id,
                })
        })
        .collect();

    DesignSpace::new(func.name.clone(), roots, arrays, bindings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_pass_the_frontend_and_lowering() {
        for k in all() {
            let f = lower_kernel(k.name).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(!f.loops().is_empty(), "{} has loops", k.name);
            assert!(!f.ops.is_empty(), "{} has ops", k.name);
        }
    }

    #[test]
    fn twelve_train_four_dse() {
        assert_eq!(training_kernels().count(), 12);
        assert_eq!(dse_kernels().count(), 4);
        let dse: Vec<&str> = dse_kernels().map(|k| k.name).collect();
        assert_eq!(dse, vec!["bicg", "symm", "mvt", "syrk"]);
    }

    #[test]
    fn design_spaces_are_nontrivial() {
        for k in all() {
            let f = lower_kernel(k.name).unwrap();
            let space = design_space(&f);
            let n = space.enumerate().len();
            assert!(n >= 10, "{}: space too small ({n})", k.name);
        }
    }

    #[test]
    fn dse_space_sizes_match_paper_order_of_magnitude() {
        for k in dse_kernels() {
            let f = lower_kernel(k.name).unwrap();
            let n = design_space(&f).enumerate().len();
            // paper: 1972..2796; ours should be within the same order
            assert!(
                (100..20_000).contains(&n),
                "{}: unexpected space size {n}",
                k.name
            );
        }
    }

    #[test]
    fn gemm_bindings_follow_access_patterns() {
        let f = lower_kernel("gemm").unwrap();
        let space = design_space(&f);
        // array `b` is indexed b[k][j]: dim 1 must bind to the k-loop
        let b1 = space
            .bindings
            .iter()
            .find(|b| b.array == "b" && b.dim == 1)
            .expect("binding for b dim 1");
        assert_eq!(b1.loop_id, LoopId::from_path(&[0, 0, 0]));
    }

    #[test]
    fn spmv_has_dynamic_access() {
        let f = lower_kernel("spmv").unwrap();
        let dynamic = f.ops.iter().any(|o| {
            matches!(
                &o.kind,
                OpKind::Load {
                    access: AccessPattern::Dynamic { .. },
                    ..
                }
            )
        });
        assert!(dynamic, "spmv must exercise the dynamic-index path");
    }

    #[test]
    fn kernels_evaluate_under_default_config() {
        for k in all() {
            let f = lower_kernel(k.name).unwrap();
            let report = hlsim::evaluate(&f, &pragma::PragmaConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(report.top.latency > 0, "{}", k.name);
            assert!(report.top.lut > 0, "{}", k.name);
        }
    }

    #[test]
    fn kernels_build_graphs_under_default_config() {
        for k in all() {
            let f = lower_kernel(k.name).unwrap();
            let g = cdfg::GraphBuilder::new(&f, &pragma::PragmaConfig::default()).build();
            assert!(g.num_nodes() > 5, "{}: graph too small", k.name);
            assert!(g.num_edges() > 5, "{}: no edges", k.name);
        }
    }
}
