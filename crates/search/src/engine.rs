//! The budgeted search engine: ask → evaluate → tell → track the front.
//!
//! A [`SearchRun`] owns the strategy, the RNG, the evaluation ledger, and
//! the incumbent Pareto front ([`dse::ParetoAccumulator`]). Each
//! [`SearchRun::step`] asks the strategy for a batch, decodes the genomes,
//! drops fingerprints already evaluated (cache hits cost no budget),
//! evaluates the fresh ones through [`par::try_map`] (deterministic for
//! any `QOR_THREADS`), feeds the scores back, and emits per-iteration
//! `obs` series (`evaluations`, `front_size`, and `adrs_percent` when a
//! reference front is supplied).
//!
//! Evaluation is abstracted behind [`Evaluate`] so the same loop can score
//! candidates with the trained GNN predictor ([`SessionEval`]) or the
//! simulated tool-flow oracle ([`OracleEval`], used by the ADRS-bound
//! tests where the reference front must live in the same objective space).

use std::collections::HashMap;
use std::sync::Arc;

use dse::ParetoAccumulator;
use hir::Function;
use pragma::PragmaConfig;
use qor_core::{FnvBuildHasher, QorError, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::space::{Genome, SpaceModel};
use crate::strategy::{self, Strategy, StrategyKind};

/// Scores one pragma configuration as a `(latency, area)` point.
pub trait Evaluate: Sync {
    /// Evaluates `cfg`, returning `(latency cycles, normalized area)`.
    ///
    /// # Errors
    ///
    /// Implementation-specific evaluation failures.
    fn evaluate(&self, cfg: &PragmaConfig) -> Result<(f64, f64), QorError>;
}

/// Scores a whole batch of fresh candidates at once.
///
/// This is the seam the distributed fleet plugs into: a dispatcher shards
/// `batch` into work units, sends them to workers, and returns the scores
/// *in candidate order* — the engine's merge is therefore independent of
/// reply order. Every [`Evaluate`] is a `BatchEvaluate` via the blanket
/// impl, which runs the batch through [`par::try_map`] exactly as the
/// single-process engine always has, so both paths score candidate `i`
/// identically and the determinism contract is preserved.
pub trait BatchEvaluate: Sync {
    /// Scores `batch`, returning one `(latency, area)` per candidate in
    /// the same order.
    ///
    /// # Errors
    ///
    /// Implementation-specific evaluation failures.
    fn evaluate_batch(&self, batch: &[(Genome, PragmaConfig)])
        -> Result<Vec<(f64, f64)>, QorError>;

    /// Live evaluator-side progress (e.g. fleet worker/unit counters) for
    /// job status surfaces; `None` for plain in-process evaluators.
    fn detail(&self) -> Option<obs::Json> {
        None
    }

    /// Evaluator state to persist into the job snapshot (the fleet
    /// dispatcher returns its assignment record); `None` otherwise.
    fn assignment(&self) -> Option<crate::job::FleetAssignment> {
        None
    }
}

impl<T: Evaluate + ?Sized> BatchEvaluate for T {
    fn evaluate_batch(
        &self,
        batch: &[(Genome, PragmaConfig)],
    ) -> Result<Vec<(f64, f64)>, QorError> {
        par::try_map("search/evaluate", batch, |_, (_, cfg)| self.evaluate(cfg))
    }
}

/// Scores candidates with the cached GNN predictor.
pub struct SessionEval {
    session: Arc<Session>,
    kernel: String,
}

impl SessionEval {
    /// Binds a session to the kernel under search.
    pub fn new(session: Arc<Session>, kernel: impl Into<String>) -> Self {
        SessionEval {
            session,
            kernel: kernel.into(),
        }
    }
}

impl Evaluate for SessionEval {
    fn evaluate(&self, cfg: &PragmaConfig) -> Result<(f64, f64), QorError> {
        let q = self.session.predict_kernel(&self.kernel, cfg)?;
        Ok((q.latency as f64, dse::area(&q)))
    }
}

/// Scores candidates with the simulated tool-flow oracle.
pub struct OracleEval {
    func: Arc<Function>,
}

impl OracleEval {
    /// Wraps a lowered kernel function.
    pub fn new(func: Arc<Function>) -> Self {
        OracleEval { func }
    }
}

impl Evaluate for OracleEval {
    fn evaluate(&self, cfg: &PragmaConfig) -> Result<(f64, f64), QorError> {
        let report = hlsim::evaluate(&self.func, cfg).map_err(QorError::from)?;
        Ok((report.top.latency as f64, dse::area(&report.top)))
    }
}

/// Parameters of one search job.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Bundled kernel to search.
    pub kernel: String,
    /// Heuristic to run.
    pub strategy: StrategyKind,
    /// Evaluation budget (distinct configurations scored).
    pub budget: u64,
    /// RNG seed; same seed → byte-identical trajectory.
    pub seed: u64,
    /// Candidates proposed per iteration.
    pub batch: usize,
    /// Overrides the space's unroll factors (e.g. `[1, 4]` to shrink an
    /// enumerable test space).
    pub unroll_factors: Option<Vec<u32>>,
    /// Reference point set for per-iteration ADRS reporting (typically the
    /// exhaustive front in the same objective space as the evaluator).
    pub reference: Option<Vec<(f64, f64)>>,
}

impl SearchOptions {
    /// Options with the workspace defaults: batch 8, seed 0.
    pub fn new(kernel: impl Into<String>, strategy: StrategyKind, budget: u64) -> Self {
        SearchOptions {
            kernel: kernel.into(),
            strategy,
            budget,
            seed: 0,
            batch: 8,
            unroll_factors: None,
            reference: None,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-iteration batch size (floored at 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the explored unroll factors.
    pub fn with_unroll_factors(mut self, factors: Vec<u32>) -> Self {
        self.unroll_factors = Some(factors);
        self
    }

    /// Supplies a reference set for ADRS series reporting.
    pub fn with_reference(mut self, reference: Vec<(f64, f64)>) -> Self {
        self.reference = Some(reference);
        self
    }
}

/// One scored design in the evaluation ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Pragma fingerprint of the decoded configuration.
    pub fingerprint: u64,
    /// The genome that produced it.
    pub genome: Genome,
    /// Scored `(latency, area)`.
    pub point: (f64, f64),
}

/// Progress of one [`SearchRun::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Fresh evaluations this step (0 once the budget is exhausted or the
    /// strategy only re-proposes known designs).
    pub evaluated: usize,
    /// Budget spent so far.
    pub spent: u64,
    /// Current front size.
    pub front_size: usize,
}

/// Final result of a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Distinct configurations evaluated.
    pub spent: u64,
    /// Ask/tell iterations executed.
    pub iterations: u64,
    /// The incumbent front as `(fingerprint, latency, area)`, sorted by
    /// `(latency, area)` for presentation.
    pub front: Vec<(u64, f64, f64)>,
}

/// A budgeted, resumable heuristic search (see the [module docs](self)).
pub struct SearchRun {
    pub(crate) opts: SearchOptions,
    pub(crate) model: SpaceModel,
    pub(crate) strategy: Box<dyn Strategy>,
    pub(crate) rng: StdRng,
    pub(crate) iterations: u64,
    pub(crate) evaluated: Vec<EvalRecord>,
    pub(crate) index: HashMap<u64, usize, FnvBuildHasher>,
    pub(crate) front: ParetoAccumulator,
    pub(crate) fleet: Option<crate::job::FleetAssignment>,
}

impl std::fmt::Debug for SearchRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchRun")
            .field("opts", &self.opts)
            .field("iterations", &self.iterations)
            .field("spent", &self.spent())
            .field("front_size", &self.front.len())
            .finish_non_exhaustive()
    }
}

impl SearchRun {
    /// Builds a fresh run over a bundled kernel's pragma space.
    ///
    /// # Errors
    ///
    /// [`QorError::UnknownKernel`] for names outside the bundled set;
    /// [`QorError::Shape`] for degenerate spaces (see [`SpaceModel::new`]).
    pub fn for_kernel(opts: SearchOptions) -> Result<SearchRun, QorError> {
        let model = SpaceModel::for_kernel(&opts.kernel, opts.unroll_factors.as_deref())?;
        let strategy = strategy::build(opts.strategy);
        let rng = StdRng::seed_from_u64(opts.seed);
        Ok(SearchRun {
            opts,
            model,
            strategy,
            rng,
            iterations: 0,
            evaluated: Vec::new(),
            index: HashMap::default(),
            front: ParetoAccumulator::new(),
            fleet: None,
        })
    }

    /// The run's options.
    pub fn options(&self) -> &SearchOptions {
        &self.opts
    }

    /// Budget spent so far (one unit per distinct configuration scored).
    pub fn spent(&self) -> u64 {
        self.evaluated.len() as u64
    }

    /// Ask/tell iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Whether the budget is exhausted.
    pub fn is_done(&self) -> bool {
        self.spent() >= self.opts.budget
    }

    /// Points of the incumbent front, in insertion order.
    pub fn front_points(&self) -> Vec<(f64, f64)> {
        self.front.points()
    }

    /// The evaluation ledger, in evaluation order.
    pub fn ledger(&self) -> &[EvalRecord] {
        &self.evaluated
    }

    /// Fleet assignment state carried by this run (persisted in `.qorjob`
    /// v2 snapshots), if the run is driven by a fleet dispatcher.
    pub fn fleet(&self) -> Option<&crate::job::FleetAssignment> {
        self.fleet.as_ref()
    }

    /// Attaches (or clears) the fleet assignment persisted with the run.
    pub fn set_fleet(&mut self, fleet: Option<crate::job::FleetAssignment>) {
        self.fleet = fleet;
    }

    /// Runs one ask → evaluate → tell iteration.
    ///
    /// Candidates whose fingerprint was already scored are answered from
    /// the ledger without spending budget; the batch is truncated to the
    /// remaining budget, so [`SearchRun::spent`] never exceeds it.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest-index) evaluation failure.
    pub fn step(&mut self, eval: &dyn Evaluate) -> Result<StepReport, QorError> {
        self.step_with(eval)
    }

    /// [`SearchRun::step`] over any batch evaluator (in-process via the
    /// blanket impl, or a fleet dispatcher). Scores are consumed in
    /// candidate order, so the result is byte-identical no matter how the
    /// evaluator parallelizes internally.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest-index) evaluation failure.
    pub fn step_with<E: BatchEvaluate + ?Sized>(
        &mut self,
        eval: &E,
    ) -> Result<StepReport, QorError> {
        let sp = obs::span("search_step");
        sp.attr("kernel", self.opts.kernel.as_str());
        sp.attr("strategy", self.opts.strategy.name());

        let asked = self
            .strategy
            .ask(&self.model, self.opts.batch, &mut self.rng);
        let decoded: Vec<(Genome, PragmaConfig, u64)> = asked
            .into_iter()
            .map(|g| {
                let cfg = self.model.decode(&g);
                let fp = cfg.fingerprint();
                (g, cfg, fp)
            })
            .collect();

        // fresh = first occurrence in this batch, unseen in the ledger,
        // and within the remaining budget
        let mut remaining = self.opts.budget.saturating_sub(self.spent()) as usize;
        let mut batch_seen: HashMap<u64, (), FnvBuildHasher> = HashMap::default();
        let mut fresh: Vec<(usize, u64)> = Vec::new();
        for (i, (_, _, fp)) in decoded.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if self.index.contains_key(fp) || batch_seen.contains_key(fp) {
                continue;
            }
            batch_seen.insert(*fp, ());
            fresh.push((i, *fp));
            remaining -= 1;
        }

        let candidates: Vec<(Genome, PragmaConfig)> = fresh
            .iter()
            .map(|&(i, _)| (decoded[i].0.clone(), decoded[i].1.clone()))
            .collect();
        let scores = eval.evaluate_batch(&candidates)?;
        if scores.len() != candidates.len() {
            return Err(QorError::Shape(format!(
                "evaluator returned {} scores for {} candidates",
                scores.len(),
                candidates.len()
            )));
        }
        let evaluated = fresh.len();
        for (&(i, fp), point) in fresh.iter().zip(&scores) {
            self.index.insert(fp, self.evaluated.len());
            self.evaluated.push(EvalRecord {
                fingerprint: fp,
                genome: decoded[i].0.clone(),
                point: *point,
            });
            self.front.push(fp, *point);
        }

        // answer the whole batch from the ledger, preserving ask order
        let scored: Vec<(Genome, Option<(f64, f64)>)> = decoded
            .into_iter()
            .map(|(g, _, fp)| {
                let point = self.index.get(&fp).map(|&ix| self.evaluated[ix].point);
                (g, point)
            })
            .collect();
        self.strategy.tell(&self.model, &scored, &mut self.rng);
        self.iterations += 1;

        let prefix = format!("search/{}/{}", self.opts.kernel, self.opts.strategy.name());
        obs::metrics::series_push(
            &format!("{prefix}/evaluations"),
            self.iterations,
            self.spent() as f64,
        );
        obs::metrics::series_push(
            &format!("{prefix}/front_size"),
            self.iterations,
            self.front.len() as f64,
        );
        if let Some(reference) = &self.opts.reference {
            let adrs = dse::Adrs::compute(reference, &self.front.points());
            obs::metrics::series_push(
                &format!("{prefix}/adrs_percent"),
                self.iterations,
                adrs.percent(),
            );
        }
        sp.attr("evaluated", evaluated);

        Ok(StepReport {
            evaluated,
            spent: self.spent(),
            front_size: self.front.len(),
        })
    }

    /// Steps until the budget is exhausted (or the strategy stalls for
    /// many consecutive iterations without finding a fresh design, which
    /// can only happen when the whole space has been enumerated).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure.
    pub fn run(&mut self, eval: &dyn Evaluate) -> Result<SearchOutcome, QorError> {
        self.run_with(eval)
    }

    /// [`SearchRun::run`] over any batch evaluator.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation failure.
    pub fn run_with<E: BatchEvaluate + ?Sized>(
        &mut self,
        eval: &E,
    ) -> Result<SearchOutcome, QorError> {
        let mut stalled = 0u32;
        while !self.is_done() {
            let report = self.step_with(eval)?;
            if report.evaluated == 0 {
                stalled += 1;
                // 64 consecutive dry batches ≈ the space is exhausted below
                // the budget; random restarts can no longer find anything new
                if stalled >= 64 {
                    break;
                }
            } else {
                stalled = 0;
            }
        }
        Ok(self.outcome())
    }

    /// The incumbent front, packaged (see [`SearchOutcome`]).
    pub fn outcome(&self) -> SearchOutcome {
        let mut front: Vec<(u64, f64, f64)> = self
            .front
            .entries()
            .map(|(fp, p)| (*fp, p.0, p.1))
            .collect();
        front.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then(a.2.total_cmp(&b.2))
                .then(a.0.cmp(&b.0))
        });
        SearchOutcome {
            spent: self.spent(),
            iterations: self.iterations,
            front,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qor_core::{HierarchicalModel, TrainOptions};

    fn session() -> Arc<Session> {
        let opts = TrainOptions::quick().with_hidden(8).with_seed(5);
        Arc::new(Session::with_capacity(HierarchicalModel::new(&opts), 64))
    }

    fn run_opts(strategy: StrategyKind) -> SearchOptions {
        SearchOptions::new("fir", strategy, 12)
            .with_seed(42)
            .with_batch(4)
            .with_unroll_factors(vec![1, 2, 4])
    }

    #[test]
    fn budget_is_respected_and_front_is_consistent() {
        let session = session();
        for strategy in StrategyKind::all() {
            let eval = SessionEval::new(session.clone(), "fir");
            let mut run = SearchRun::for_kernel(run_opts(strategy)).unwrap();
            let outcome = run.run(&eval).unwrap();
            assert!(outcome.spent <= 12, "{strategy}: overspent");
            assert!(!outcome.front.is_empty(), "{strategy}: empty front");
            // every front member must be a ledger entry and non-dominated
            // within the ledger
            for &(fp, lat, area) in &outcome.front {
                let rec = run
                    .evaluated
                    .iter()
                    .find(|r| r.fingerprint == fp)
                    .expect("front member must be evaluated");
                assert_eq!(rec.point, (lat, area));
                assert!(!run.evaluated.iter().any(|r| {
                    r.point.0 <= lat && r.point.1 <= area && (r.point.0 < lat || r.point.1 < area)
                }));
            }
        }
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let session = session();
        for strategy in StrategyKind::all() {
            let eval = SessionEval::new(session.clone(), "fir");
            let a = SearchRun::for_kernel(run_opts(strategy))
                .unwrap()
                .run(&eval)
                .unwrap();
            let b = SearchRun::for_kernel(run_opts(strategy))
                .unwrap()
                .run(&eval)
                .unwrap();
            assert_eq!(a, b, "{strategy}: seed determinism violated");
        }
    }

    #[test]
    fn duplicate_proposals_spend_no_budget() {
        // budget far above the space size: the run must stop by stalling,
        // with spent == |space|, not loop forever or overspend
        let session = session();
        let eval = SessionEval::new(session, "fir");
        let opts = SearchOptions::new("fir", StrategyKind::Random, 10_000)
            .with_seed(3)
            .with_batch(8)
            .with_unroll_factors(vec![1, 4]);
        let mut run = SearchRun::for_kernel(opts).unwrap();
        let space_size = run.model.space().enumerate().len() as u64;
        let outcome = run.run(&eval).unwrap();
        assert_eq!(outcome.spent, space_size);
    }

    #[test]
    fn unknown_kernels_are_typed() {
        let err = SearchRun::for_kernel(SearchOptions::new(
            "no_such_kernel",
            StrategyKind::Random,
            4,
        ))
        .unwrap_err();
        assert!(matches!(err, QorError::UnknownKernel(_)), "{err:?}");
    }

    #[test]
    fn reference_front_drives_the_adrs_series() {
        obs::test_support::force_collection(true);
        let func = kernels::lower_kernel("fir").unwrap();
        let mut space = kernels::design_space(&func);
        space.unroll_factors = vec![1, 4];
        let configs = space.enumerate();
        let reports = par::try_map("test/oracle", &configs, |_, c| {
            hlsim::evaluate(&func, c).map_err(QorError::from)
        })
        .unwrap();
        let pts: Vec<(f64, f64)> = reports
            .iter()
            .map(|r| (r.top.latency as f64, dse::area(&r.top)))
            .collect();

        let eval = OracleEval::new(Arc::new(func));
        let opts = SearchOptions::new("fir", StrategyKind::Anneal, 10)
            .with_seed(1)
            .with_batch(4)
            .with_unroll_factors(vec![1, 4])
            .with_reference(pts);
        let mut run = SearchRun::for_kernel(opts).unwrap();
        run.run(&eval).unwrap();
        assert!(obs::metrics::series_len("search/fir/anneal/adrs_percent") > 0);
        assert!(obs::metrics::series_len("search/fir/anneal/front_size") > 0);
        obs::test_support::force_collection(false);
    }
}
