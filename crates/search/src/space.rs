//! Genome encoding over a kernel's legal pragma space.
//!
//! A [`SpaceModel`] flattens a [`DesignSpace`] loop tree into a fixed gene
//! vector so strategies can mutate, cross over, and step designs without
//! knowing the tree. Per loop (pre-order) there is a *pipeline* gene and an
//! *unroll* gene (an index into the loop's trip-count-legal factors); every
//! non-leaf perfect chain head additionally carries a *flatten* gene.
//!
//! Decoding mirrors [`DesignSpace::enumerate`]'s legality rules exactly —
//! loops under a pipelined ancestor are forced `Unroll::Full`, a set
//! flatten gene applies the whole chain family (flatten every level,
//! pipeline the innermost), factor 1 becomes `Unroll::Off`, and array
//! partitioning is derived through [`DesignSpace::apply_bindings`] — so
//! **every genome decodes to a configuration inside the enumerated
//! space**. That closure property is what makes ADRS-vs-exhaustive
//! comparisons meaningful: the heuristics search the same space the sweep
//! enumerates, just lazily.

use pragma::{DesignSpace, LoopId, LoopShape, PragmaConfig, Unroll};
use qor_core::wire::{put_u16, Cursor};
use qor_core::QorError;
use rand::rngs::StdRng;
use rand::Rng;

/// One decoded design candidate: a flat vector of gene values, one per
/// slot of the [`SpaceModel`] that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Genome(pub Vec<u16>);

impl Genome {
    /// Serializes the gene vector (`u16` length + genes) via `wire`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, self.0.len() as u16);
        for g in &self.0 {
            put_u16(out, *g);
        }
    }

    /// Reads a gene vector written by [`Genome::encode`].
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn decode_from(c: &mut Cursor<'_>) -> Result<Genome, QorError> {
        let len = c.u16("genome length")? as usize;
        let mut genes = Vec::new();
        for _ in 0..len {
            genes.push(c.u16("gene")?);
        }
        Ok(Genome(genes))
    }
}

/// One gene slot: how many values it takes (which loop and pragma it
/// controls is tracked on the [`NodeSlots`] side).
#[derive(Debug, Clone)]
struct Slot {
    cardinality: u16,
}

/// Per-loop slot bookkeeping (loops in pre-order).
#[derive(Debug, Clone)]
struct NodeSlots {
    id: LoopId,
    /// Unroll factors legal for this loop's trip count, in space order.
    factors: Vec<u32>,
    pipeline_slot: usize,
    unroll_slot: usize,
    flatten_slot: Option<usize>,
}

/// A [`DesignSpace`] flattened into gene slots (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct SpaceModel {
    space: DesignSpace,
    slots: Vec<Slot>,
    nodes: Vec<NodeSlots>,
}

impl SpaceModel {
    /// Flattens `space` into gene slots.
    ///
    /// # Errors
    ///
    /// [`QorError::Shape`] when the space has no loops or a loop admits no
    /// legal unroll factor (empty `unroll_factors`, or all above the trip
    /// count).
    pub fn new(space: DesignSpace) -> Result<SpaceModel, QorError> {
        let mut slots = Vec::new();
        let mut nodes = Vec::new();
        fn walk(
            space: &DesignSpace,
            shape: &LoopShape,
            slots: &mut Vec<Slot>,
            nodes: &mut Vec<NodeSlots>,
        ) -> Result<(), QorError> {
            let factors: Vec<u32> = space
                .unroll_factors
                .iter()
                .copied()
                .filter(|&f| u64::from(f) <= shape.trip_count)
                .collect();
            if factors.is_empty() {
                return Err(QorError::Shape(format!(
                    "loop {:?} (trip count {}) admits no unroll factor from {:?}",
                    shape.id.path(),
                    shape.trip_count,
                    space.unroll_factors
                )));
            }
            let pipeline_slot = slots.len();
            slots.push(Slot { cardinality: 2 });
            let unroll_slot = slots.len();
            slots.push(Slot {
                cardinality: factors.len() as u16,
            });
            let flatten_slot = if !shape.children.is_empty() && shape.is_perfect_chain() {
                let s = slots.len();
                slots.push(Slot { cardinality: 2 });
                Some(s)
            } else {
                None
            };
            nodes.push(NodeSlots {
                id: shape.id.clone(),
                factors,
                pipeline_slot,
                unroll_slot,
                flatten_slot,
            });
            for c in &shape.children {
                walk(space, c, slots, nodes)?;
            }
            Ok(())
        }
        for root in &space.roots {
            walk(&space, root, &mut slots, &mut nodes)?;
        }
        if nodes.is_empty() {
            return Err(QorError::Shape(format!(
                "kernel {:?} has no loops to search over",
                space.kernel
            )));
        }
        Ok(SpaceModel {
            space,
            slots,
            nodes,
        })
    }

    /// The model for a bundled kernel's pragma space, optionally with
    /// overridden unroll factors — the same construction
    /// [`crate::SearchRun::for_kernel`] performs, exposed so fleet workers
    /// can rebuild the coordinator's exact genome space from wire
    /// parameters.
    ///
    /// # Errors
    ///
    /// [`QorError::UnknownKernel`] for names outside the bundled set;
    /// [`QorError::Shape`] for degenerate spaces (see [`SpaceModel::new`]).
    pub fn for_kernel(
        kernel: &str,
        unroll_factors: Option<&[u32]>,
    ) -> Result<SpaceModel, QorError> {
        let func = kernels::lower_kernel(kernel)
            .map_err(|_| QorError::UnknownKernel(kernel.to_string()))?;
        let mut space = kernels::design_space(&func);
        if let Some(factors) = unroll_factors {
            space.unroll_factors = factors.to_vec();
        }
        SpaceModel::new(space)
    }

    /// The wrapped design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Number of gene slots (the genome length).
    pub fn genome_len(&self) -> usize {
        self.slots.len()
    }

    /// A uniformly random genome.
    pub fn random_genome(&self, rng: &mut StdRng) -> Genome {
        Genome(
            self.slots
                .iter()
                .map(|s| rng.gen_range(0..s.cardinality))
                .collect(),
        )
    }

    /// Gene value at `slot`, clamped into the slot's cardinality so stale
    /// or hand-built genomes can never panic the decoder.
    fn gene(&self, g: &Genome, slot: usize) -> u16 {
        g.0.get(slot).copied().unwrap_or(0) % self.slots[slot].cardinality
    }

    fn node(&self, id: &LoopId) -> &NodeSlots {
        self.nodes
            .iter()
            .find(|n| &n.id == id)
            .expect("every shape id has a node entry")
    }

    /// Decodes a genome into a legal [`PragmaConfig`] (see the
    /// [module docs](self) for the legality rules mirrored here).
    pub fn decode(&self, g: &Genome) -> PragmaConfig {
        let mut cfg = PragmaConfig::new();
        for root in &self.space.roots {
            self.decode_loop(root, g, false, &mut cfg);
        }
        self.space.apply_bindings(&mut cfg);
        cfg
    }

    fn decode_loop(
        &self,
        shape: &LoopShape,
        g: &Genome,
        forced_full: bool,
        cfg: &mut PragmaConfig,
    ) {
        let node = self.node(&shape.id);
        if forced_full {
            cfg.set_pipeline(shape.id.clone(), false);
            cfg.set_unroll(shape.id.clone(), Unroll::Full);
            cfg.set_flatten(shape.id.clone(), false);
            for c in &shape.children {
                self.decode_loop(c, g, true, cfg);
            }
            return;
        }
        if let Some(fslot) = node.flatten_slot {
            if self.gene(g, fslot) == 1 {
                // chain family: flatten every level, pipeline the innermost
                let mut cur = shape;
                loop {
                    let leaf = cur.children.is_empty();
                    cfg.set_pipeline(cur.id.clone(), leaf);
                    cfg.set_unroll(cur.id.clone(), Unroll::Off);
                    cfg.set_flatten(cur.id.clone(), true);
                    if leaf {
                        return;
                    }
                    cur = &cur.children[0];
                }
            }
        }
        let pipeline = self.gene(g, node.pipeline_slot) == 1;
        let factor = node.factors[self.gene(g, node.unroll_slot) as usize];
        let unroll = if factor == 1 {
            Unroll::Off
        } else {
            Unroll::Factor(factor)
        };
        cfg.set_pipeline(shape.id.clone(), pipeline);
        cfg.set_unroll(shape.id.clone(), unroll);
        cfg.set_flatten(shape.id.clone(), false);
        for c in &shape.children {
            self.decode_loop(c, g, pipeline, cfg);
        }
    }

    /// One annealing move: flip a pipeline bit, step an unroll factor,
    /// step a partition factor (through its array binding's loop), or
    /// toggle a chain flatten. Returns a new genome one move away.
    pub fn neighbor(&self, g: &Genome, rng: &mut StdRng) -> Genome {
        // collect the applicable move classes for this space
        let steppable: Vec<usize> = self
            .nodes
            .iter()
            .filter(|n| n.factors.len() > 1)
            .map(|n| n.unroll_slot)
            .collect();
        let bound_steppable: Vec<usize> = self
            .space
            .bindings
            .iter()
            .filter_map(|b| self.nodes.iter().find(|n| n.id == b.loop_id))
            .filter(|n| n.factors.len() > 1)
            .map(|n| n.unroll_slot)
            .collect();
        let flattenable: Vec<usize> = self.nodes.iter().filter_map(|n| n.flatten_slot).collect();

        let mut moves: Vec<u8> = vec![0]; // flip pipeline is always available
        if !steppable.is_empty() {
            moves.push(1);
        }
        if !bound_steppable.is_empty() {
            moves.push(2);
        }
        if !flattenable.is_empty() {
            moves.push(3);
        }

        let mut out = g.clone();
        match moves[rng.gen_range(0..moves.len())] {
            0 => {
                let n = &self.nodes[rng.gen_range(0..self.nodes.len())];
                out.0[n.pipeline_slot] = 1 - self.gene(g, n.pipeline_slot);
            }
            1 => {
                let slot = steppable[rng.gen_range(0..steppable.len())];
                out.0[slot] = self.step_gene(g, slot, rng);
            }
            2 => {
                // "step partition factor": partitioning is bound to unroll,
                // so stepping the bound loop's unroll gene steps the
                // derived partition factor with it
                let slot = bound_steppable[rng.gen_range(0..bound_steppable.len())];
                out.0[slot] = self.step_gene(g, slot, rng);
            }
            _ => {
                let slot = flattenable[rng.gen_range(0..flattenable.len())];
                out.0[slot] = 1 - self.gene(g, slot);
            }
        }
        out
    }

    /// Steps a multi-valued gene by ±1, reflecting at the ends so the move
    /// always changes the value.
    fn step_gene(&self, g: &Genome, slot: usize, rng: &mut StdRng) -> u16 {
        let card = self.slots[slot].cardinality;
        debug_assert!(card > 1);
        let cur = self.gene(g, slot);
        let up = rng.gen_bool(0.5);
        if up && cur + 1 < card {
            cur + 1
        } else if !up && cur > 0 {
            cur - 1
        } else if cur + 1 < card {
            cur + 1
        } else {
            cur - 1
        }
    }

    /// Single-point crossover of two parents.
    pub fn crossover(&self, a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
        let len = self.genome_len();
        if len < 2 {
            return a.clone();
        }
        let cut = rng.gen_range(1..len);
        let mut genes = Vec::with_capacity(len);
        for slot in 0..len {
            let src = if slot < cut { a } else { b };
            genes.push(self.gene(src, slot));
        }
        Genome(genes)
    }

    /// Resamples each gene independently with probability `rate`.
    pub fn mutate(&self, g: &mut Genome, rate: f64, rng: &mut StdRng) {
        for (slot, s) in self.slots.iter().enumerate() {
            if rng.gen_bool(rate) {
                g.0[slot] = rng.gen_range(0..s.cardinality);
            }
        }
        // normalize out-of-range genes so equality on genomes is equality
        // on decoded configurations for in-model genomes
        for slot in 0..g.0.len().min(self.slots.len()) {
            g.0[slot] %= self.slots[slot].cardinality;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn model(kernel: &str, factors: Vec<u32>) -> SpaceModel {
        let func = kernels::lower_kernel(kernel).unwrap();
        let mut space = kernels::design_space(&func);
        space.unroll_factors = factors;
        SpaceModel::new(space).unwrap()
    }

    #[test]
    fn every_random_genome_decodes_into_the_enumerated_space() {
        for kernel in ["mvt", "bicg", "fir", "jacobi1d"] {
            let m = model(kernel, vec![1, 4]);
            let enumerated: HashSet<u64> = m
                .space()
                .enumerate()
                .iter()
                .map(PragmaConfig::fingerprint)
                .collect();
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..200 {
                let g = m.random_genome(&mut rng);
                let fp = m.decode(&g).fingerprint();
                assert!(
                    enumerated.contains(&fp),
                    "{kernel}: genome {g:?} decodes outside the enumerated space"
                );
            }
        }
    }

    #[test]
    fn random_genomes_cover_the_whole_small_space() {
        let m = model("fir", vec![1, 4]);
        let n = m.space().enumerate().len();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = HashSet::new();
        for _ in 0..2_000 {
            seen.insert(m.decode(&m.random_genome(&mut rng)).fingerprint());
        }
        assert_eq!(seen.len(), n, "random sampling must reach every design");
    }

    #[test]
    fn neighbor_moves_stay_in_space_and_change_the_genome() {
        let m = model("mvt", vec![1, 2, 4]);
        let enumerated: HashSet<u64> = m
            .space()
            .enumerate()
            .iter()
            .map(PragmaConfig::fingerprint)
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = m.random_genome(&mut rng);
        for _ in 0..300 {
            let next = m.neighbor(&g, &mut rng);
            assert_ne!(next, g, "a move must change at least one gene");
            assert!(enumerated.contains(&m.decode(&next).fingerprint()));
            g = next;
        }
    }

    #[test]
    fn crossover_and_mutation_stay_in_space() {
        let m = model("bicg", vec![1, 2, 4]);
        let enumerated: HashSet<u64> = m
            .space()
            .enumerate()
            .iter()
            .map(PragmaConfig::fingerprint)
            .collect();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let a = m.random_genome(&mut rng);
            let b = m.random_genome(&mut rng);
            let mut child = m.crossover(&a, &b, &mut rng);
            m.mutate(&mut child, 0.3, &mut rng);
            assert!(enumerated.contains(&m.decode(&child).fingerprint()));
        }
    }

    #[test]
    fn out_of_range_genes_are_clamped_not_panicking() {
        let m = model("fir", vec![1, 4]);
        let g = Genome(vec![u16::MAX; m.genome_len()]);
        let fp = m.decode(&g).fingerprint();
        let enumerated: HashSet<u64> = m
            .space()
            .enumerate()
            .iter()
            .map(PragmaConfig::fingerprint)
            .collect();
        assert!(enumerated.contains(&fp));
        // short genomes read as zeros
        let short = Genome(vec![]);
        assert!(enumerated.contains(&m.decode(&short).fingerprint()));
    }

    #[test]
    fn genome_wire_round_trip() {
        let g = Genome(vec![0, 3, 1, 65535]);
        let mut out = Vec::new();
        g.encode(&mut out);
        let mut c = Cursor::new(&out);
        assert_eq!(Genome::decode_from(&mut c).unwrap(), g);
        assert!(c.done());
        let mut truncated = Cursor::new(&out[..3]);
        assert!(Genome::decode_from(&mut truncated).is_err());
    }

    #[test]
    fn degenerate_spaces_are_rejected_typed() {
        let func = kernels::lower_kernel("fir").unwrap();
        let mut space = kernels::design_space(&func);
        space.unroll_factors = vec![1024];
        assert!(matches!(SpaceModel::new(space), Err(QorError::Shape(_))));
        let empty = DesignSpace::new("none", vec![], vec![], vec![]);
        assert!(matches!(SpaceModel::new(empty), Err(QorError::Shape(_))));
    }
}
