#![warn(missing_docs)]
//! Budgeted heuristic design-space exploration over pragma spaces.
//!
//! The exhaustive sweep in `crates/dse` scores *every* configuration; the
//! paper's larger kernels have thousands, and real spaces grow beyond
//! enumeration. This crate explores the same spaces under an explicit
//! evaluation budget with three seed-deterministic heuristics — uniform
//! random sampling, simulated annealing over pragma-neighbor moves, and a
//! genetic loop — behind one ask/tell [`Strategy`] interface:
//!
//! * [`SpaceModel`] flattens a [`pragma::DesignSpace`] into a genome whose
//!   every decoding lands inside the enumerated space (legality rules are
//!   mirrored exactly, array partitioning stays derived from unroll
//!   factors),
//! * [`SearchRun`] drives ask → evaluate → tell, scores batches through
//!   `par` (bit-identical for any `QOR_THREADS`), answers repeat
//!   proposals from its ledger without spending budget, and tracks the
//!   incumbent front with [`dse::ParetoAccumulator`],
//! * [`job`] freezes a run mid-flight into a checksummed `.qorjob` stream
//!   that resumes to the exact same trajectory,
//! * [`JobRunner`] executes submitted jobs on background threads for the
//!   `qor-serve` HTTP endpoints (`POST /dse`, `GET /dse/<id>`,
//!   `DELETE /dse/<id>`).
//!
//! ```
//! use search::{SearchOptions, SearchRun, SessionEval, StrategyKind};
//! use qor_core::{HierarchicalModel, Session, TrainOptions};
//! use std::sync::Arc;
//!
//! let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(8));
//! let session = Arc::new(Session::with_capacity(model, 64));
//! let opts = SearchOptions::new("fir", StrategyKind::Anneal, 8)
//!     .with_seed(42)
//!     .with_batch(4);
//! let mut run = SearchRun::for_kernel(opts).unwrap();
//! let outcome = run.run(&SessionEval::new(session, "fir")).unwrap();
//! assert!(outcome.spent <= 8 && !outcome.front.is_empty());
//! ```

pub mod engine;
pub mod job;
pub mod runner;
pub mod space;
pub mod strategy;

pub use engine::{
    BatchEvaluate, EvalRecord, Evaluate, OracleEval, SearchOptions, SearchOutcome, SearchRun,
    SessionEval, StepReport,
};
pub use job::{
    load_job_file, restore, save_job_file, snapshot, snapshot_v1, FleetAssignment,
    FleetWorkerRecord, JOB_FORMAT_VERSION, JOB_MAGIC, JOB_MIN_FORMAT_VERSION,
};
pub use runner::{JobProgress, JobRunner, JobStatus, RunnerStats};
pub use space::{Genome, SpaceModel};
pub use strategy::{Strategy, StrategyKind};

use qor_core::{HierarchicalModel, QorError, Session, TrainOptions};
use std::sync::Arc;

/// End-to-end smoke test used by `qor-search --self-test` and `ci.sh`.
///
/// On a tiny kernel (`fir`, unroll factors `{1, 2, 4}`) with a fixed seed,
/// for each of the three strategies:
///
/// 1. a budgeted run spends at most its budget and yields a non-empty
///    front,
/// 2. re-running the same seed gives a byte-identical `.qorjob` snapshot,
/// 3. snapshotting mid-run and resuming reaches the same final front and
///    snapshot bytes as the uninterrupted run,
/// 4. corrupting a sampled byte of the snapshot yields a typed error
///    (never a panic or a silently wrong run).
///
/// # Errors
///
/// A human-readable description of the first failed check.
pub fn self_test() -> Result<(), String> {
    let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(8).with_seed(7));
    let session = Arc::new(Session::with_capacity(model, 64));

    for kind in StrategyKind::all() {
        let opts = SearchOptions::new("fir", kind, 12)
            .with_seed(2024)
            .with_batch(4)
            .with_unroll_factors(vec![1, 2, 4]);
        let eval = SessionEval::new(session.clone(), "fir");

        // 1. budget + front
        let mut run = SearchRun::for_kernel(opts.clone()).map_err(|e| e.to_string())?;
        let outcome = run.run(&eval).map_err(|e| e.to_string())?;
        if outcome.spent > 12 {
            return Err(format!("{kind}: overspent budget ({} > 12)", outcome.spent));
        }
        if outcome.front.is_empty() {
            return Err(format!("{kind}: empty front"));
        }

        // 2. same seed, byte-identical snapshot
        let mut rerun = SearchRun::for_kernel(opts.clone()).map_err(|e| e.to_string())?;
        rerun.run(&eval).map_err(|e| e.to_string())?;
        let bytes = snapshot(&run);
        if bytes != snapshot(&rerun) {
            return Err(format!("{kind}: same-seed snapshots differ"));
        }

        // 3. mid-run snapshot resumes to the same end state
        let mut partial = SearchRun::for_kernel(opts.clone()).map_err(|e| e.to_string())?;
        partial.step(&eval).map_err(|e| e.to_string())?;
        let mid = snapshot(&partial);
        let mut resumed = restore(&mid).map_err(|e| e.to_string())?;
        let resumed_outcome = resumed.run(&eval).map_err(|e| e.to_string())?;
        if resumed_outcome != outcome {
            return Err(format!(
                "{kind}: resumed run diverged from uninterrupted run"
            ));
        }
        if snapshot(&resumed) != bytes {
            return Err(format!("{kind}: resumed snapshot bytes diverged"));
        }

        // 4. sampled corruption is typed
        for offset in (0..bytes.len()).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0xff;
            match restore(&corrupt) {
                Err(QorError::Corrupt(_))
                | Err(QorError::UnsupportedVersion(_))
                | Err(QorError::Shape(_))
                | Err(QorError::UnknownKernel(_)) => {}
                Ok(_) => return Err(format!("{kind}: corrupt byte {offset} accepted")),
                Err(other) => return Err(format!("{kind}: corrupt byte {offset} gave {other:?}")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        super::self_test().unwrap();
    }
}
