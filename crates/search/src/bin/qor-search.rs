//! `qor-search` — budgeted heuristic DSE from the command line.
//!
//! ```text
//! qor-search [--kernel NAME] [--strategy random|anneal|genetic]
//!            [--budget N] [--seed N] [--batch N]
//!            [--save FILE] [--resume FILE] [--self-test]
//! ```
//!
//! Runs one budgeted search over a bundled kernel's pragma space, scoring
//! candidates with an untrained quick-profile predictor session (train and
//! serve real models with `qor-serve`; this binary is about the search
//! loop). `--save` writes the finished run as a resumable `.qorjob`;
//! `--resume` continues a previous one (flags other than `--save` are then
//! taken from the file). `--self-test` is the CI gate: it exercises all
//! three strategies on a tiny space, checking budget discipline, seed
//! determinism, mid-run resume, and corruption detection.

use std::process::ExitCode;

use qor_core::{HierarchicalModel, Session, TrainOptions};
use search::{SearchOptions, SearchRun, SessionEval, StrategyKind};
use std::sync::Arc;

struct Args {
    kernel: String,
    strategy: StrategyKind,
    budget: u64,
    seed: u64,
    batch: usize,
    save: Option<String>,
    resume: Option<String>,
    self_test: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kernel: "fir".to_string(),
        strategy: StrategyKind::Anneal,
        budget: 32,
        seed: 0,
        batch: 8,
        save: None,
        resume: None,
        self_test: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--kernel" => args.kernel = value("--kernel")?,
            "--strategy" => {
                let name = value("--strategy")?;
                args.strategy = StrategyKind::parse(&name)
                    .ok_or_else(|| format!("unknown strategy {name:?} (random|anneal|genetic)"))?;
            }
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget must be an integer".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch must be an integer".to_string())?
            }
            "--save" => args.save = Some(value("--save")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--self-test" => args.self_test = true,
            "--help" | "-h" => {
                println!(
                    "usage: qor-search [--kernel NAME] [--strategy random|anneal|genetic] \
                     [--budget N] [--seed N] [--batch N] [--save FILE] [--resume FILE] \
                     [--self-test]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let _obs = obs::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qor-search: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.self_test {
        return match search::self_test() {
            Ok(()) => {
                println!("self-test ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qor-search: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let mut run = match &args.resume {
        Some(path) => {
            let run = search::load_job_file(std::path::Path::new(path))
                .map_err(|e| format!("resuming {path}: {e}"))?;
            obs::tracef!(
                1,
                "resumed {path}: kernel {}, strategy {}, {}/{} evaluations",
                run.options().kernel,
                run.options().strategy,
                run.spent(),
                run.options().budget
            );
            run
        }
        None => {
            let opts = SearchOptions::new(&args.kernel, args.strategy, args.budget)
                .with_seed(args.seed)
                .with_batch(args.batch);
            SearchRun::for_kernel(opts).map_err(|e| format!("{}: {e}", args.kernel))?
        }
    };
    let kernel = run.options().kernel.clone();
    let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(7));
    let session = Arc::new(Session::with_capacity(model, 256));
    let eval = SessionEval::new(session, &kernel);
    let outcome = run.run(&eval).map_err(|e| format!("search: {e}"))?;

    println!(
        "kernel {kernel}, strategy {}, {} evaluations over {} iterations",
        run.options().strategy,
        outcome.spent,
        outcome.iterations
    );
    println!("pareto front ({} designs):", outcome.front.len());
    println!("{:>18}  {:>12}  {:>10}", "fingerprint", "latency", "area");
    for (fp, lat, area) in &outcome.front {
        println!("{fp:#018x}  {lat:>12.0}  {area:>10.4}");
    }
    if let Some(path) = &args.save {
        search::save_job_file(&run, std::path::Path::new(path))
            .map_err(|e| format!("saving {path}: {e}"))?;
        obs::tracef!(1, "job written to {path}");
    }
    Ok(())
}
