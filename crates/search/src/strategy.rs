//! Search strategies behind one ask/tell interface.
//!
//! A [`Strategy`] proposes a batch of genomes ([`Strategy::ask`]), the
//! engine scores them, and the strategy observes the scores
//! ([`Strategy::tell`]) to steer the next batch. Three heuristics are
//! provided:
//!
//! * [`StrategyKind::Random`] — uniform sampling, the budget baseline,
//! * [`StrategyKind::Anneal`] — simulated annealing over pragma-neighbor
//!   moves (flip a pipeline, step an unroll factor, step a bound
//!   partition factor, toggle a chain flatten), one chain per batch slot,
//!   each chain scalarizing (latency, area) with its own weight so the
//!   ensemble spreads across the Pareto front,
//! * [`StrategyKind::Genetic`] — a (μ+λ) genetic loop with tournament
//!   selection on non-dominated rank, single-point crossover, and
//!   per-gene mutation.
//!
//! All strategies draw randomness only from the engine's [`StdRng`], so a
//! run is fully determined by its seed, and all expose
//! [`Strategy::save_state`] so a mid-run job snapshot resumes the exact
//! trajectory.

use crate::space::{Genome, SpaceModel};
use qor_core::wire::{put_f64, put_u32, put_u64, Cursor};
use qor_core::QorError;
use rand::rngs::StdRng;
use rand::Rng;

/// Which heuristic a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random sampling.
    Random,
    /// Simulated annealing over pragma-neighbor moves.
    Anneal,
    /// Genetic search with crossover and mutation.
    Genetic,
}

impl StrategyKind {
    /// Stable lowercase name (used in HTTP payloads and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Random => "random",
            StrategyKind::Anneal => "anneal",
            StrategyKind::Genetic => "genetic",
        }
    }

    /// Stable on-disk code for `.qorjob` files.
    pub fn code(self) -> u8 {
        match self {
            StrategyKind::Random => 0,
            StrategyKind::Anneal => 1,
            StrategyKind::Genetic => 2,
        }
    }

    /// Inverse of [`StrategyKind::code`].
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] for unknown codes.
    pub fn from_code(code: u8) -> Result<StrategyKind, QorError> {
        match code {
            0 => Ok(StrategyKind::Random),
            1 => Ok(StrategyKind::Anneal),
            2 => Ok(StrategyKind::Genetic),
            other => Err(QorError::Corrupt(format!("unknown strategy code {other}"))),
        }
    }

    /// Parses a [`StrategyKind::name`].
    pub fn parse(name: &str) -> Option<StrategyKind> {
        match name {
            "random" => Some(StrategyKind::Random),
            "anneal" => Some(StrategyKind::Anneal),
            "genetic" => Some(StrategyKind::Genetic),
            _ => None,
        }
    }

    /// All strategies, for sweeps and self-tests.
    pub fn all() -> [StrategyKind; 3] {
        [
            StrategyKind::Random,
            StrategyKind::Anneal,
            StrategyKind::Genetic,
        ]
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scale-free scalarization of a `(latency, area)` point: a convex
/// combination of log-latency and log-area. Logs keep the two objectives
/// comparable even though raw latency is O(10^4) cycles and raw area is
/// O(10^-2) of the device.
pub fn cost(lambda: f64, point: (f64, f64)) -> f64 {
    lambda * point.0.max(1.0).ln() + (1.0 - lambda) * point.1.max(1e-12).ln()
}

/// One heuristic's ask/tell state machine (see the [module docs](self)).
pub trait Strategy: Send {
    /// Which heuristic this is.
    fn kind(&self) -> StrategyKind;

    /// Proposes up to `batch` genomes to evaluate next.
    fn ask(&mut self, model: &SpaceModel, batch: usize, rng: &mut StdRng) -> Vec<Genome>;

    /// Observes the scores for the genomes from the last [`Strategy::ask`],
    /// aligned one-to-one (`None` = not evaluated, e.g. budget-truncated).
    fn tell(
        &mut self,
        model: &SpaceModel,
        scored: &[(Genome, Option<(f64, f64)>)],
        rng: &mut StdRng,
    );

    /// Serializes the strategy's internal state for `.qorjob` snapshots.
    fn save_state(&self, out: &mut Vec<u8>);
}

/// Builds a fresh strategy of the given kind.
pub fn build(kind: StrategyKind) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::Random => Box::new(RandomSearch),
        StrategyKind::Anneal => Box::new(Anneal::new()),
        StrategyKind::Genetic => Box::new(Genetic::new()),
    }
}

/// Rebuilds a strategy from a [`Strategy::save_state`] payload.
///
/// # Errors
///
/// [`QorError::Corrupt`] on truncated or malformed state.
pub fn load_state(kind: StrategyKind, c: &mut Cursor<'_>) -> Result<Box<dyn Strategy>, QorError> {
    match kind {
        StrategyKind::Random => Ok(Box::new(RandomSearch)),
        StrategyKind::Anneal => Ok(Box::new(Anneal::load(c)?)),
        StrategyKind::Genetic => Ok(Box::new(Genetic::load(c)?)),
    }
}

// ----------------------------------------------------------------- random

/// Uniform random sampling; stateless.
struct RandomSearch;

impl Strategy for RandomSearch {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Random
    }

    fn ask(&mut self, model: &SpaceModel, batch: usize, rng: &mut StdRng) -> Vec<Genome> {
        (0..batch).map(|_| model.random_genome(rng)).collect()
    }

    fn tell(
        &mut self,
        _model: &SpaceModel,
        _scored: &[(Genome, Option<(f64, f64)>)],
        _rng: &mut StdRng,
    ) {
    }

    fn save_state(&self, _out: &mut Vec<u8>) {}
}

// ----------------------------------------------------------------- anneal

/// Initial annealing temperature (in units of log-cost).
const ANNEAL_T0: f64 = 0.5;
/// Per-iteration geometric cooling factor.
const ANNEAL_COOLING: f64 = 0.95;
/// Temperature floor so late iterations still accept exact ties.
const ANNEAL_T_MIN: f64 = 1e-3;

/// One Metropolis chain: its scalarization weight, its current genome and
/// that genome's cost (`None` until the chain's first evaluation lands).
struct Chain {
    lambda: f64,
    genome: Genome,
    cost: Option<f64>,
}

/// Simulated annealing, one chain per batch slot; each chain walks
/// pragma-neighbor moves under its own latency/area weight.
struct Anneal {
    iter: u64,
    chains: Vec<Chain>,
}

impl Anneal {
    fn new() -> Anneal {
        Anneal {
            iter: 0,
            chains: Vec::new(),
        }
    }

    fn temperature(&self) -> f64 {
        (ANNEAL_T0 * ANNEAL_COOLING.powf(self.iter as f64)).max(ANNEAL_T_MIN)
    }

    fn load(c: &mut Cursor<'_>) -> Result<Anneal, QorError> {
        let iter = c.u64("anneal iter")?;
        let n = c.u32("anneal chain count")?;
        let mut chains = Vec::new();
        for _ in 0..n {
            let lambda = c.f64("chain lambda")?;
            let raw = c.f64("chain cost")?;
            let genome = Genome::decode_from(c)?;
            chains.push(Chain {
                lambda,
                genome,
                cost: if raw.is_nan() { None } else { Some(raw) },
            });
        }
        Ok(Anneal { iter, chains })
    }
}

impl Strategy for Anneal {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Anneal
    }

    fn ask(&mut self, model: &SpaceModel, batch: usize, rng: &mut StdRng) -> Vec<Genome> {
        if self.chains.is_empty() {
            // seed the ensemble: chain i scalarizes with λ = (i+1)/(batch+1)
            self.chains = (0..batch)
                .map(|i| Chain {
                    lambda: (i + 1) as f64 / (batch + 1) as f64,
                    genome: model.random_genome(rng),
                    cost: None,
                })
                .collect();
            return self.chains.iter().map(|ch| ch.genome.clone()).collect();
        }
        self.chains
            .iter()
            .map(|ch| model.neighbor(&ch.genome, rng))
            .collect()
    }

    fn tell(
        &mut self,
        _model: &SpaceModel,
        scored: &[(Genome, Option<(f64, f64)>)],
        rng: &mut StdRng,
    ) {
        let t = self.temperature();
        for (chain, (genome, point)) in self.chains.iter_mut().zip(scored) {
            let Some(point) = point else { continue };
            let proposed = cost(chain.lambda, *point);
            let accept = match chain.cost {
                None => true,
                Some(current) => {
                    let delta = proposed - current;
                    delta <= 0.0 || rng.gen_bool((-delta / t).exp().min(1.0))
                }
            };
            if accept {
                chain.genome = genome.clone();
                chain.cost = Some(proposed);
            }
        }
        self.iter += 1;
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.iter);
        put_u32(out, self.chains.len() as u32);
        for ch in &self.chains {
            put_f64(out, ch.lambda);
            put_f64(out, ch.cost.unwrap_or(f64::NAN));
            ch.genome.encode(out);
        }
    }
}

// ---------------------------------------------------------------- genetic

/// Crossover probability per offspring.
const GA_CROSSOVER_P: f64 = 0.9;
/// Tournament size for parent selection.
const GA_TOURNAMENT: usize = 2;

/// One scored population member.
struct Member {
    genome: Genome,
    point: (f64, f64),
}

/// (μ+λ) genetic search: parents survive alongside offspring, selection
/// pressure comes from non-dominated rank with a balanced-cost tiebreak.
struct Genetic {
    generation: u64,
    population: Vec<Member>,
}

impl Genetic {
    fn new() -> Genetic {
        Genetic {
            generation: 0,
            population: Vec::new(),
        }
    }

    fn load(c: &mut Cursor<'_>) -> Result<Genetic, QorError> {
        let generation = c.u64("ga generation")?;
        let n = c.u32("ga population count")?;
        let mut population = Vec::new();
        for _ in 0..n {
            let genome = Genome::decode_from(c)?;
            let lat = c.f64("member latency")?;
            let area = c.f64("member area")?;
            population.push(Member {
                genome,
                point: (lat, area),
            });
        }
        Ok(Genetic {
            generation,
            population,
        })
    }

    /// Non-dominated ranks: rank 0 is the Pareto front of the set, rank 1
    /// the front of the remainder, and so on (O(n^2) peeling; populations
    /// are batch-sized).
    fn ranks(points: &[(f64, f64)]) -> Vec<u32> {
        fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
            a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
        }
        let mut rank = vec![u32::MAX; points.len()];
        let mut level = 0;
        loop {
            let unranked: Vec<usize> = (0..points.len()).filter(|&i| rank[i] == u32::MAX).collect();
            if unranked.is_empty() {
                return rank;
            }
            // the front of the *remaining* set, judged against the set as
            // it stood at the start of this level (not mutated mid-pass)
            for &i in &unranked {
                let dominated = unranked
                    .iter()
                    .any(|&j| j != i && dominates(points[j], points[i]));
                if !dominated {
                    rank[i] = level;
                }
            }
            level += 1;
        }
    }

    /// Tournament winner index by (rank, balanced cost).
    fn select(&self, ranks: &[u32], rng: &mut StdRng) -> usize {
        let mut best = rng.gen_range(0..self.population.len());
        for _ in 1..GA_TOURNAMENT {
            let i = rng.gen_range(0..self.population.len());
            let key = |ix: usize| (ranks[ix], cost(0.5, self.population[ix].point));
            let (rb, cb) = key(best);
            let (ri, ci) = key(i);
            if (ri, ci) < (rb, cb) {
                best = i;
            }
        }
        best
    }
}

impl Strategy for Genetic {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Genetic
    }

    fn ask(&mut self, model: &SpaceModel, batch: usize, rng: &mut StdRng) -> Vec<Genome> {
        if self.population.is_empty() {
            return (0..batch).map(|_| model.random_genome(rng)).collect();
        }
        let ranks = Genetic::ranks(&self.population.iter().map(|m| m.point).collect::<Vec<_>>());
        let mutation_rate = 1.0 / model.genome_len().max(1) as f64;
        (0..batch)
            .map(|_| {
                let a = self.select(&ranks, rng);
                let mut child = if rng.gen_bool(GA_CROSSOVER_P) {
                    let b = self.select(&ranks, rng);
                    model.crossover(&self.population[a].genome, &self.population[b].genome, rng)
                } else {
                    self.population[a].genome.clone()
                };
                model.mutate(&mut child, mutation_rate, rng);
                child
            })
            .collect()
    }

    fn tell(
        &mut self,
        _model: &SpaceModel,
        scored: &[(Genome, Option<(f64, f64)>)],
        _rng: &mut StdRng,
    ) {
        let batch = scored.len().max(1);
        for (genome, point) in scored {
            if let Some(point) = point {
                self.population.push(Member {
                    genome: genome.clone(),
                    point: *point,
                });
            }
        }
        if self.population.len() > batch {
            // (μ+λ) survival: best `batch` by (rank, balanced cost), stable
            let ranks =
                Genetic::ranks(&self.population.iter().map(|m| m.point).collect::<Vec<_>>());
            let mut order: Vec<usize> = (0..self.population.len()).collect();
            order.sort_by(|&a, &b| {
                (ranks[a], cost(0.5, self.population[a].point))
                    .partial_cmp(&(ranks[b], cost(0.5, self.population[b].point)))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order.truncate(batch);
            order.sort_unstable();
            let mut keep = Vec::with_capacity(batch);
            let mut members = std::mem::take(&mut self.population);
            for (i, m) in members.drain(..).enumerate() {
                if order.contains(&i) {
                    keep.push(m);
                }
            }
            self.population = keep;
        }
        self.generation += 1;
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.generation);
        put_u32(out, self.population.len() as u32);
        for m in &self.population {
            m.genome.encode(out);
            put_f64(out, m.point.0);
            put_f64(out, m.point.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> SpaceModel {
        let func = kernels::lower_kernel("fir").unwrap();
        let mut space = kernels::design_space(&func);
        space.unroll_factors = vec![1, 2, 4];
        SpaceModel::new(space).unwrap()
    }

    #[test]
    fn kind_codes_round_trip_and_reject_garbage() {
        for kind in StrategyKind::all() {
            assert_eq!(StrategyKind::from_code(kind.code()).unwrap(), kind);
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
        }
        assert!(matches!(
            StrategyKind::from_code(9),
            Err(QorError::Corrupt(_))
        ));
        assert_eq!(StrategyKind::parse("bogus"), None);
    }

    #[test]
    fn ranks_peel_fronts_and_handle_duplicates() {
        let pts = [(1.0, 3.0), (3.0, 1.0), (2.0, 2.0), (4.0, 4.0), (4.0, 4.0)];
        let ranks = Genetic::ranks(&pts);
        assert_eq!(&ranks[..3], &[0, 0, 0]);
        assert_eq!(ranks[3], ranks[4]);
        assert!(ranks[3] > 0);
    }

    #[test]
    fn cost_prefers_dominating_points_at_any_weight() {
        let better = (100.0, 0.02);
        let worse = (200.0, 0.04);
        for lambda in [0.1, 0.5, 0.9] {
            assert!(cost(lambda, better) < cost(lambda, worse));
        }
    }

    /// Every strategy's state must round-trip through save/load such that
    /// the continuation emits the same proposals.
    #[test]
    fn save_load_state_resumes_the_same_proposals() {
        let m = model();
        for kind in StrategyKind::all() {
            let mut rng = StdRng::seed_from_u64(99);
            let mut s = build(kind);
            for _ in 0..3 {
                let asked = s.ask(&m, 4, &mut rng);
                let scored: Vec<_> = asked
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (g.clone(), Some((100.0 + i as f64, 0.01 * (i + 1) as f64))))
                    .collect();
                s.tell(&m, &scored, &mut rng);
            }
            let mut state = Vec::new();
            s.save_state(&mut state);
            let mut c = Cursor::new(&state);
            let mut restored = load_state(kind, &mut c).unwrap();
            assert!(c.done(), "{kind}: trailing state bytes");

            let mut rng_a = StdRng::seed_from_u64(7);
            let mut rng_b = StdRng::seed_from_u64(7);
            assert_eq!(
                s.ask(&m, 4, &mut rng_a),
                restored.ask(&m, 4, &mut rng_b),
                "{kind}: restored strategy diverged"
            );
        }
    }

    #[test]
    fn truncated_strategy_state_is_typed_corrupt() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [StrategyKind::Anneal, StrategyKind::Genetic] {
            let mut s = build(kind);
            let asked = s.ask(&m, 3, &mut rng);
            let scored: Vec<_> = asked
                .iter()
                .map(|g| (g.clone(), Some((50.0, 0.5))))
                .collect();
            s.tell(&m, &scored, &mut rng);
            let mut state = Vec::new();
            s.save_state(&mut state);
            for len in 0..state.len() {
                let mut c = Cursor::new(&state[..len]);
                match load_state(kind, &mut c) {
                    Err(QorError::Corrupt(_)) => {}
                    Ok(_) if c.done() => panic!("{kind}: truncation to {len} parsed fully"),
                    Ok(_) => {} // prefix parsed; job loader rejects trailing bytes
                    Err(other) => panic!("{kind}: unexpected error {other:?}"),
                }
            }
        }
    }
}
