//! Background job runner for HTTP-served search jobs.
//!
//! A [`JobRunner`] owns a shared predictor [`Session`] and a table of
//! jobs. [`JobRunner::submit`] validates the request *synchronously* (bad
//! kernels or degenerate spaces fail before a job id is handed out), then
//! drives the run on a detached thread, publishing progress after every
//! step and honoring cancellation between steps. Aggregate counters
//! (submitted / completed / failed / cancelled, total evaluations, busy
//! time) feed the server's `/metrics` endpoint.
//!
//! When a jobs directory is configured, every finished or in-flight step
//! also persists a `.qorjob` snapshot, so a killed server can resume its
//! jobs offline with `qor-search --resume`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use obs::log::Level;
use obs::{trace, Json};
use qor_core::{QorError, Session};

use crate::engine::{BatchEvaluate, SearchOptions, SearchRun, SessionEval};
use crate::job;

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The worker thread is still stepping.
    Running,
    /// The budget was exhausted (or the space ran dry) without error.
    Done,
    /// An evaluation failed; see [`JobProgress::error`].
    Failed,
    /// The job was cancelled via [`JobRunner::delete`].
    Cancelled,
}

impl JobStatus {
    /// Stable lowercase name for HTTP payloads.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// Publicly visible snapshot of one job's progress.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Lifecycle state.
    pub status: JobStatus,
    /// Kernel under search.
    pub kernel: String,
    /// Strategy name.
    pub strategy: String,
    /// Evaluation budget.
    pub budget: u64,
    /// Budget spent so far.
    pub spent: u64,
    /// Ask/tell iterations executed.
    pub iterations: u64,
    /// Incumbent front as `(fingerprint, latency, area)`, sorted by
    /// `(latency, area)`.
    pub front: Vec<(u64, f64, f64)>,
    /// Failure message when [`JobStatus::Failed`].
    pub error: Option<String>,
    /// Evaluator-side live detail (fleet jobs publish worker/unit
    /// counters here); `None` for in-process jobs.
    pub fleet: Option<Json>,
    /// Job-scoped trace id (raw [`obs::TraceId`] bits), derived
    /// deterministically from the job id at submission. Every span, log
    /// event and flight record the worker thread emits carries it, so an
    /// entire search run can be followed through `QOR_LOG` output and
    /// `GET /debug/requests` from its `GET /dse` listing.
    pub trace: u64,
}

/// One tracked job: its id, cancellation flag, and latest progress.
struct JobHandle {
    cancel: AtomicBool,
    progress: Mutex<JobProgress>,
}

/// Aggregate runner counters for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerStats {
    /// Jobs accepted by [`JobRunner::submit`].
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that stopped on an evaluation error.
    pub failed: u64,
    /// Jobs cancelled mid-run.
    pub cancelled: u64,
    /// Total candidate evaluations across all jobs.
    pub evaluations: u64,
    /// Evaluations per busy second (0 until something ran).
    pub evals_per_sec: f64,
}

/// Background search-job executor (see the [module docs](self)).
pub struct JobRunner {
    /// Swappable so a serving layer can hot-reload the default model; each
    /// job captures one `Arc<Session>` at start and keeps it for its whole
    /// run (in-flight jobs are never switched mid-search).
    session: RwLock<Arc<Session>>,
    jobs: Mutex<BTreeMap<String, Arc<JobHandle>>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    evaluations: AtomicU64,
    busy_nanos: AtomicU64,
    jobs_dir: Option<PathBuf>,
}

impl JobRunner {
    /// A runner scoring candidates through `session`.
    pub fn new(session: Arc<Session>) -> Arc<JobRunner> {
        Arc::new(JobRunner {
            session: RwLock::new(session),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            jobs_dir: None,
        })
    }

    /// A runner that additionally persists a `.qorjob` snapshot per job
    /// into `dir` after every step.
    pub fn with_jobs_dir(session: Arc<Session>, dir: PathBuf) -> Arc<JobRunner> {
        let mut runner = JobRunner::new(session);
        Arc::get_mut(&mut runner)
            .expect("fresh runner is uniquely owned")
            .jobs_dir = Some(dir);
        runner
    }

    /// The session new jobs will score candidates through.
    pub fn session(&self) -> Arc<Session> {
        self.session.read().unwrap().clone()
    }

    /// Swaps the session used by **future** jobs (hot-reload support).
    /// Jobs already running keep the session they captured at start, so a
    /// swap never changes a search mid-run.
    pub fn set_session(&self, session: Arc<Session>) {
        *self.session.write().unwrap() = session;
    }

    /// Validates `opts` and starts the job on a background thread.
    ///
    /// # Errors
    ///
    /// [`QorError::UnknownKernel`] / [`QorError::Shape`] when the request
    /// does not describe a searchable space (nothing is enqueued).
    pub fn submit(self: &Arc<Self>, opts: SearchOptions) -> Result<String, QorError> {
        self.submit_impl(opts, None)
    }

    /// [`JobRunner::submit`], scoring candidates through a caller-supplied
    /// batch evaluator instead of the runner's session — the hook the
    /// fleet coordinator uses to fan evaluation out over HTTP workers. The
    /// evaluator's [`BatchEvaluate::detail`] is republished into
    /// [`JobProgress::fleet`] after every step, and its
    /// [`BatchEvaluate::assignment`] is carried into each persisted
    /// `.qorjob` snapshot.
    ///
    /// # Errors
    ///
    /// As [`JobRunner::submit`].
    pub fn submit_with(
        self: &Arc<Self>,
        opts: SearchOptions,
        eval: Box<dyn BatchEvaluate + Send>,
    ) -> Result<String, QorError> {
        self.submit_impl(opts, Some(eval))
    }

    fn submit_impl(
        self: &Arc<Self>,
        opts: SearchOptions,
        eval: Option<Box<dyn BatchEvaluate + Send>>,
    ) -> Result<String, QorError> {
        let run = SearchRun::for_kernel(opts)?;
        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let trace_id = trace::derive(&[b"dse-job", id.as_bytes()]);
        let handle = Arc::new(JobHandle {
            cancel: AtomicBool::new(false),
            progress: Mutex::new(JobProgress {
                status: JobStatus::Running,
                kernel: run.options().kernel.clone(),
                strategy: run.options().strategy.name().to_string(),
                budget: run.options().budget,
                spent: 0,
                iterations: 0,
                front: Vec::new(),
                error: None,
                fleet: None,
                trace: trace_id.0,
            }),
        });
        self.jobs.lock().unwrap().insert(id.clone(), handle.clone());
        if obs::log::enabled(Level::Info) {
            let _g = trace::adopt(trace_id);
            obs::log::event(
                Level::Info,
                "dse.submit",
                &[
                    ("job", Json::str(&id)),
                    ("kernel", Json::str(&run.options().kernel)),
                    ("strategy", Json::str(run.options().strategy.name())),
                    ("budget", Json::UInt(run.options().budget)),
                ],
            );
        }

        let runner = Arc::clone(self);
        let thread_id = id.clone();
        std::thread::Builder::new()
            .name(format!("qor-dse-{id}"))
            .spawn(move || runner.drive(&thread_id, handle, run, eval))
            .expect("spawning a job thread");
        Ok(id)
    }

    /// Drives one job to completion on the worker thread.
    ///
    /// The worker adopts the job's trace context for its whole run, wraps
    /// every ask/tell iteration in a `dse_step` span, and deposits a
    /// `kind: "job"` flight record (one stage per iteration) when the job
    /// leaves [`JobStatus::Running`].
    fn drive(
        &self,
        id: &str,
        handle: Arc<JobHandle>,
        mut run: SearchRun,
        custom_eval: Option<Box<dyn BatchEvaluate + Send>>,
    ) {
        let trace_id = handle.progress.lock().unwrap().trace;
        let _trace_guard = trace::adopt_raw(trace_id);
        let _job_span = obs::span!(
            "dse_job",
            "job" => id,
            "kernel" => run.options().kernel.as_str(),
        );
        // one capture for the whole job: stats diffs and candidate scoring
        // both read this session even if the runner's default is swapped
        let session = self.session();
        let stats_before = session.stats();
        let started_us = obs::log::now_us();
        let mut flight = obs::flight::FlightRecord::new("job", id);
        flight.start_us = started_us;
        let mut job_busy_ns = 0u64;
        let mut step_no = 0u64;
        let session_eval;
        let eval: &dyn BatchEvaluate = match &custom_eval {
            Some(boxed) => &**boxed,
            None => {
                session_eval = SessionEval::new(session.clone(), &run.options().kernel);
                &session_eval
            }
        };
        let mut stalled = 0u32;
        let final_status = loop {
            if handle.cancel.load(Ordering::Relaxed) {
                break JobStatus::Cancelled;
            }
            if run.is_done() {
                break JobStatus::Done;
            }
            let t0 = std::time::Instant::now();
            let step = {
                let _s = obs::span("dse_step");
                run.step_with(eval)
            };
            let step_ns = t0.elapsed().as_nanos() as u64;
            self.busy_nanos.fetch_add(step_ns, Ordering::Relaxed);
            job_busy_ns += step_ns;
            step_no += 1;
            flight
                .stages
                .push((format!("step-{step_no}"), step_ns / 1_000));
            match step {
                Ok(report) => {
                    self.evaluations
                        .fetch_add(report.evaluated as u64, Ordering::Relaxed);
                    if obs::log::enabled(Level::Debug) {
                        obs::log::event(
                            Level::Debug,
                            "dse.step",
                            &[
                                ("job", Json::str(id)),
                                ("iteration", Json::UInt(step_no)),
                                ("evaluated", Json::UInt(report.evaluated as u64)),
                            ],
                        );
                    }
                    if report.evaluated == 0 {
                        stalled += 1;
                        if stalled >= 64 {
                            break JobStatus::Done;
                        }
                    } else {
                        stalled = 0;
                    }
                    run.set_fleet(eval.assignment());
                    self.publish(&handle, &run, JobStatus::Running, None, eval.detail());
                    self.persist(id, &run);
                }
                Err(e) => {
                    self.publish(
                        &handle,
                        &run,
                        JobStatus::Failed,
                        Some(e.to_string()),
                        eval.detail(),
                    );
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    self.finish(
                        id,
                        &run,
                        JobStatus::Failed,
                        flight,
                        job_busy_ns,
                        &stats_before,
                        &session,
                    );
                    return;
                }
            }
        };
        match final_status {
            JobStatus::Done => {
                self.completed.fetch_add(1, Ordering::Relaxed);
            }
            JobStatus::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        run.set_fleet(eval.assignment());
        self.publish(&handle, &run, final_status, None, eval.detail());
        self.persist(id, &run);
        self.finish(
            id,
            &run,
            final_status,
            flight,
            job_busy_ns,
            &stats_before,
            &session,
        );
    }

    /// Emits the job's completion log event and flight record.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        id: &str,
        run: &SearchRun,
        status: JobStatus,
        mut flight: obs::flight::FlightRecord,
        busy_ns: u64,
        stats_before: &qor_core::CacheStats,
        session: &Session,
    ) {
        let outcome = run.outcome();
        let stats_after = session.stats();
        flight.outcome = status.name().to_string();
        flight.total_us = busy_ns / 1_000;
        flight.cache_hits = (stats_after.hits + stats_after.kernel_hits)
            - (stats_before.hits + stats_before.kernel_hits);
        flight.cache_misses = (stats_after.misses + stats_after.kernel_misses)
            - (stats_before.misses + stats_before.kernel_misses);
        // incremental-query attribution: how much of the job's prepare
        // work the pipeline database answered from memo vs recomputed
        let incr_hits = stats_after.incr_hits - stats_before.incr_hits;
        let incr_misses = stats_after.incr_misses - stats_before.incr_misses;
        let incr_recomputes = stats_after.incr_recomputes - stats_before.incr_recomputes;
        if incr_hits + incr_misses + incr_recomputes > 0 {
            flight
                .attrs
                .push(("incr_hits".to_string(), incr_hits.to_string()));
            flight
                .attrs
                .push(("incr_misses".to_string(), incr_misses.to_string()));
            flight
                .attrs
                .push(("incr_recomputes".to_string(), incr_recomputes.to_string()));
        }
        obs::flight::record(flight);
        if obs::log::enabled(Level::Info) {
            obs::log::event(
                Level::Info,
                "dse.done",
                &[
                    ("job", Json::str(id)),
                    ("status", Json::str(status.name())),
                    ("spent", Json::UInt(outcome.spent)),
                    ("iterations", Json::UInt(outcome.iterations)),
                    ("front", Json::UInt(outcome.front.len() as u64)),
                    ("busy_us", Json::UInt(busy_ns / 1_000)),
                    ("incr_hits", Json::UInt(incr_hits)),
                    ("incr_misses", Json::UInt(incr_misses)),
                    ("incr_recomputes", Json::UInt(incr_recomputes)),
                ],
            );
        }
    }

    fn publish(
        &self,
        handle: &JobHandle,
        run: &SearchRun,
        status: JobStatus,
        error: Option<String>,
        fleet: Option<Json>,
    ) {
        let outcome = run.outcome();
        let mut progress = handle.progress.lock().unwrap();
        progress.status = status;
        progress.spent = outcome.spent;
        progress.iterations = outcome.iterations;
        progress.front = outcome.front;
        progress.error = error;
        progress.fleet = fleet;
    }

    fn persist(&self, id: &str, run: &SearchRun) {
        if let Some(dir) = &self.jobs_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = job::save_job_file(run, &dir.join(format!("{id}.qorjob")));
        }
    }

    /// Latest progress of a job, or `None` for unknown ids.
    pub fn get(&self, id: &str) -> Option<JobProgress> {
        let handle = self.jobs.lock().unwrap().get(id).cloned()?;
        let progress = handle.progress.lock().unwrap().clone();
        Some(progress)
    }

    /// Cancels (if running) and forgets a job. Returns `false` for
    /// unknown ids.
    pub fn delete(&self, id: &str) -> bool {
        let handle = self.jobs.lock().unwrap().remove(id);
        match handle {
            Some(handle) => {
                handle.cancel.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Ids of all tracked jobs, in submission order.
    pub fn ids(&self) -> Vec<String> {
        self.jobs.lock().unwrap().keys().cloned().collect()
    }

    /// Aggregate counters for `/metrics`.
    pub fn stats(&self) -> RunnerStats {
        let evaluations = self.evaluations.load(Ordering::Relaxed);
        let busy = self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        RunnerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            evaluations,
            evals_per_sec: if busy > 0.0 {
                evaluations as f64 / busy
            } else {
                0.0
            },
        }
    }

    /// Blocks until job `id` leaves [`JobStatus::Running`] (test helper;
    /// polls with a short sleep). Returns the final progress, or `None`
    /// when the id is unknown or the wait exceeds `timeout`.
    pub fn wait(&self, id: &str, timeout: std::time::Duration) -> Option<JobProgress> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let progress = self.get(id)?;
            if progress.status != JobStatus::Running {
                return Some(progress);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use qor_core::{HierarchicalModel, TrainOptions};
    use std::time::Duration;

    fn runner() -> Arc<JobRunner> {
        let opts = TrainOptions::quick().with_hidden(8).with_seed(3);
        JobRunner::new(Arc::new(Session::with_capacity(
            HierarchicalModel::new(&opts),
            64,
        )))
    }

    #[test]
    fn submit_runs_to_done_and_counts() {
        let runner = runner();
        let opts = SearchOptions::new("fir", StrategyKind::Random, 8)
            .with_seed(1)
            .with_batch(4)
            .with_unroll_factors(vec![1, 2, 4]);
        let id = runner.submit(opts).unwrap();
        let progress = runner.wait(&id, Duration::from_secs(30)).unwrap();
        assert_eq!(progress.status, JobStatus::Done);
        assert!(progress.spent <= 8);
        assert!(!progress.front.is_empty());
        let stats = runner.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert!(stats.evaluations > 0);
        assert!(stats.evals_per_sec > 0.0);
    }

    #[test]
    fn bad_submissions_fail_synchronously() {
        let runner = runner();
        let err = runner
            .submit(SearchOptions::new("nope", StrategyKind::Random, 4))
            .unwrap_err();
        assert!(matches!(err, QorError::UnknownKernel(_)));
        assert_eq!(runner.stats().submitted, 0);
        assert!(runner.ids().is_empty());
    }

    #[test]
    fn unknown_ids_and_delete_lifecycle() {
        let runner = runner();
        assert!(runner.get("job-404").is_none());
        assert!(!runner.delete("job-404"));
        let opts = SearchOptions::new("fir", StrategyKind::Genetic, 6)
            .with_seed(2)
            .with_batch(3)
            .with_unroll_factors(vec![1, 4]);
        let id = runner.submit(opts).unwrap();
        runner.wait(&id, Duration::from_secs(30)).unwrap();
        assert!(runner.delete(&id));
        assert!(runner.get(&id).is_none(), "deleted job must be forgotten");
    }

    #[test]
    fn jobs_dir_persists_resumable_snapshots() {
        let dir = std::env::temp_dir().join(format!("qor-jobs-{}", std::process::id()));
        let opts = TrainOptions::quick().with_hidden(8).with_seed(3);
        let runner = JobRunner::with_jobs_dir(
            Arc::new(Session::with_capacity(HierarchicalModel::new(&opts), 64)),
            dir.clone(),
        );
        let id = runner
            .submit(
                SearchOptions::new("fir", StrategyKind::Anneal, 6)
                    .with_seed(4)
                    .with_batch(3)
                    .with_unroll_factors(vec![1, 4]),
            )
            .unwrap();
        let progress = runner.wait(&id, Duration::from_secs(30)).unwrap();
        assert_eq!(progress.status, JobStatus::Done);
        let path = dir.join(format!("{id}.qorjob"));
        let restored = crate::job::load_job_file(&path).unwrap();
        assert_eq!(restored.spent(), progress.spent);
        std::fs::remove_dir_all(&dir).ok();
    }
}
