//! Resumable `.qorjob` snapshots of a search run.
//!
//! A snapshot is one `qor_core::wire` stream — magic `QORJOB\0\0`, format
//! version, kind byte, payload, trailing FNV-1a checksum — holding
//! everything a [`SearchRun`] needs to continue: the options, the RNG
//! state, the evaluation ledger in insertion order, and the strategy's
//! internal state. [`restore`] rebuilds the run by replaying the ledger
//! through a fresh [`dse::ParetoAccumulator`], so the incumbent front is
//! reconstructed exactly (never trusted from the file), and the resumed
//! trajectory is byte-identical to an uninterrupted one.
//!
//! Corruption handling mirrors the model checkpoint format: any flipped
//! byte fails the checksum in [`qor_core::wire::open`] *before* parsing,
//! truncations surface as [`QorError::Corrupt`], and future format
//! versions as [`QorError::UnsupportedVersion`].

use std::collections::HashMap;

use dse::ParetoAccumulator;
use qor_core::wire::{self, put_f64, put_str, put_u32, put_u64};
use qor_core::QorError;
use rand::rngs::StdRng;

use crate::engine::{EvalRecord, SearchOptions, SearchRun};
use crate::space::Genome;
use crate::strategy::{self, StrategyKind};

/// Magic bytes of a `.qorjob` stream.
pub const JOB_MAGIC: [u8; 8] = *b"QORJOB\0\0";
/// Current `.qorjob` format version (v2 appends the fleet section).
pub const JOB_FORMAT_VERSION: u32 = 2;
/// Oldest `.qorjob` format version [`restore`] still reads.
pub const JOB_MIN_FORMAT_VERSION: u32 = 1;
/// Record kind of a full job snapshot.
const KIND_SNAPSHOT: u8 = 0;

/// One worker's slice of a fleet job, as persisted in a v2 snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetWorkerRecord {
    /// The worker's `host:port` address.
    pub addr: String,
    /// Work units this worker completed.
    pub units_done: u64,
    /// Consecutive failures at snapshot time (evicted workers keep their
    /// terminal count).
    pub failures: u64,
    /// Whether the worker was serving traffic at snapshot time.
    pub healthy: bool,
}

/// Fleet assignment state carried by a v2 `.qorjob`: which workers the
/// coordinator knew, how work was spread across them, and the cumulative
/// unhappy-path counters — enough for a resumed coordinator to re-register
/// the same fleet and keep counting from where the crashed one stopped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetAssignment {
    /// The registered workers at snapshot time.
    pub workers: Vec<FleetWorkerRecord>,
    /// Work units dispatched over the job's lifetime.
    pub units_dispatched: u64,
    /// Units retried after a transport failure or timeout.
    pub units_retried: u64,
    /// Units reassigned to a different worker than first chosen.
    pub units_reassigned: u64,
    /// Workers evicted for consecutive failures.
    pub workers_evicted: u64,
}

impl FleetAssignment {
    /// Appends the wire encoding of this record.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.workers.len() as u32);
        for w in &self.workers {
            put_str(out, &w.addr);
            put_u64(out, w.units_done);
            put_u64(out, w.failures);
            out.push(u8::from(w.healthy));
        }
        put_u64(out, self.units_dispatched);
        put_u64(out, self.units_retried);
        put_u64(out, self.units_reassigned);
        put_u64(out, self.workers_evicted);
    }

    /// Reads one record from a verified payload cursor.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation or out-of-range flag bytes.
    pub fn decode(c: &mut wire::Cursor<'_>) -> Result<FleetAssignment, QorError> {
        let n = c.u32("fleet worker count")?;
        let mut workers = Vec::new();
        for _ in 0..n {
            let addr = c.str("fleet worker addr")?.to_string();
            let units_done = c.u64("fleet worker units")?;
            let failures = c.u64("fleet worker failures")?;
            let healthy = match c.u8("fleet worker health")? {
                0 => false,
                1 => true,
                other => {
                    return Err(QorError::Corrupt(format!(
                        "fleet worker health must be 0/1, found {other}"
                    )))
                }
            };
            workers.push(FleetWorkerRecord {
                addr,
                units_done,
                failures,
                healthy,
            });
        }
        Ok(FleetAssignment {
            workers,
            units_dispatched: c.u64("fleet units dispatched")?,
            units_retried: c.u64("fleet units retried")?,
            units_reassigned: c.u64("fleet units reassigned")?,
            workers_evicted: c.u64("fleet workers evicted")?,
        })
    }
}

/// Serializes the run into a `.qorjob` byte stream (current version).
pub fn snapshot(run: &SearchRun) -> Vec<u8> {
    let mut out = snapshot_body(run, JOB_FORMAT_VERSION);
    match &run.fleet {
        None => out.push(0),
        Some(fleet) => {
            out.push(1);
            fleet.encode(&mut out);
        }
    }
    wire::seal(out)
}

/// Serializes the run as a **v1** stream (no fleet section). Kept so the
/// backward-compat suite can prove current readers still load jobs written
/// by pre-fleet builds; new code should call [`snapshot`].
pub fn snapshot_v1(run: &SearchRun) -> Vec<u8> {
    wire::seal(snapshot_body(run, 1))
}

/// The version-independent prefix shared by v1 and v2 payloads.
fn snapshot_body(run: &SearchRun, version: u32) -> Vec<u8> {
    let mut out = wire::header(&JOB_MAGIC, version, KIND_SNAPSHOT);
    let opts = &run.opts;
    put_str(&mut out, &opts.kernel);
    out.push(opts.strategy.code());
    put_u64(&mut out, opts.budget);
    put_u64(&mut out, opts.seed);
    put_u32(&mut out, opts.batch as u32);
    match &opts.unroll_factors {
        None => out.push(0),
        Some(factors) => {
            out.push(1);
            put_u32(&mut out, factors.len() as u32);
            for f in factors {
                put_u32(&mut out, *f);
            }
        }
    }
    match &opts.reference {
        None => out.push(0),
        Some(reference) => {
            out.push(1);
            put_u32(&mut out, reference.len() as u32);
            for (lat, area) in reference {
                put_f64(&mut out, *lat);
                put_f64(&mut out, *area);
            }
        }
    }
    put_u64(&mut out, run.iterations);
    for word in run.rng.state() {
        put_u64(&mut out, word);
    }
    put_u64(&mut out, run.evaluated.len() as u64);
    for rec in &run.evaluated {
        put_u64(&mut out, rec.fingerprint);
        rec.genome.encode(&mut out);
        put_f64(&mut out, rec.point.0);
        put_f64(&mut out, rec.point.1);
    }
    run.strategy.save_state(&mut out);
    out
}

/// Rebuilds a run from a [`snapshot`] stream.
///
/// # Errors
///
/// [`QorError::Corrupt`] for flipped bytes, truncations, trailing bytes,
/// or malformed payloads; [`QorError::UnsupportedVersion`] for versions
/// outside `JOB_MIN_FORMAT_VERSION..=JOB_FORMAT_VERSION` (v1 jobs written
/// by pre-fleet builds still load, with no fleet state);
/// [`QorError::UnknownKernel`] when the snapshot names a kernel outside
/// the bundled set.
pub fn restore(bytes: &[u8]) -> Result<SearchRun, QorError> {
    let (version, kind, mut c) = wire::open_range(
        bytes,
        &JOB_MAGIC,
        JOB_MIN_FORMAT_VERSION,
        JOB_FORMAT_VERSION,
    )?;
    if kind != KIND_SNAPSHOT {
        return Err(QorError::Corrupt(format!("unknown job record kind {kind}")));
    }
    let kernel = c.str("job kernel")?.to_string();
    let strategy_kind = StrategyKind::from_code(c.u8("job strategy")?)?;
    let budget = c.u64("job budget")?;
    let seed = c.u64("job seed")?;
    let batch = c.u32("job batch")?.max(1) as usize;
    let unroll_factors = match c.u8("unroll override flag")? {
        0 => None,
        1 => {
            let n = c.u32("unroll override count")?;
            let mut factors = Vec::new();
            for _ in 0..n {
                factors.push(c.u32("unroll factor")?);
            }
            Some(factors)
        }
        other => {
            return Err(QorError::Corrupt(format!(
                "unroll override flag must be 0/1, found {other}"
            )))
        }
    };
    let reference = match c.u8("reference flag")? {
        0 => None,
        1 => {
            let n = c.u32("reference count")?;
            let mut reference = Vec::new();
            for _ in 0..n {
                let lat = c.f64("reference latency")?;
                let area = c.f64("reference area")?;
                reference.push((lat, area));
            }
            Some(reference)
        }
        other => {
            return Err(QorError::Corrupt(format!(
                "reference flag must be 0/1, found {other}"
            )))
        }
    };
    let iterations = c.u64("job iterations")?;
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = c.u64("rng state")?;
    }
    let n_evaluated = c.u64("evaluated count")?;

    let opts = SearchOptions {
        kernel,
        strategy: strategy_kind,
        budget,
        seed,
        batch,
        unroll_factors,
        reference,
    };
    let mut run = SearchRun::for_kernel(opts)?;
    run.rng = StdRng::from_state(rng_state);
    run.iterations = iterations;

    // replay the ledger record-at-a-time (no preallocation from the
    // untrusted count), rebuilding the index and the front exactly
    let mut evaluated = Vec::new();
    let mut index = HashMap::default();
    let mut front = ParetoAccumulator::new();
    for _ in 0..n_evaluated {
        let fingerprint = c.u64("record fingerprint")?;
        let genome = Genome::decode_from(&mut c)?;
        let lat = c.f64("record latency")?;
        let area = c.f64("record area")?;
        if index.insert(fingerprint, evaluated.len()).is_some() {
            return Err(QorError::Corrupt(format!(
                "duplicate fingerprint {fingerprint:#018x} in job ledger"
            )));
        }
        front.push(fingerprint, (lat, area));
        evaluated.push(EvalRecord {
            fingerprint,
            genome,
            point: (lat, area),
        });
    }
    run.evaluated = evaluated;
    run.index = index;
    run.front = front;
    run.strategy = strategy::load_state(strategy_kind, &mut c)?;
    run.fleet = if version >= 2 {
        match c.u8("fleet flag")? {
            0 => None,
            1 => Some(FleetAssignment::decode(&mut c)?),
            other => {
                return Err(QorError::Corrupt(format!(
                    "fleet flag must be 0/1, found {other}"
                )))
            }
        }
    } else {
        None
    };
    if !c.done() {
        return Err(QorError::Corrupt(format!(
            "{} trailing bytes after job payload",
            c.remaining()
        )));
    }
    Ok(run)
}

/// Writes a snapshot to `path` atomically (write temp + rename).
///
/// # Errors
///
/// [`QorError::Io`] on filesystem failures.
pub fn save_job_file(run: &SearchRun, path: &std::path::Path) -> Result<(), QorError> {
    let bytes = snapshot(run);
    let tmp = path.with_extension("qorjob.tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and restores a job from `path`.
///
/// # Errors
///
/// [`QorError::Io`] when the file cannot be read; otherwise as
/// [`restore`].
pub fn load_job_file(path: &std::path::Path) -> Result<SearchRun, QorError> {
    let bytes = std::fs::read(path)?;
    restore(&bytes)
}
