//! Acceptance tests: heuristics at 25% budget vs the exhaustive front,
//! and thread-count independence of a seeded run.

use std::sync::Arc;

use qor_core::{HierarchicalModel, QorError, Session, TrainOptions};
use search::{OracleEval, SearchOptions, SearchRun, SessionEval, StrategyKind};

/// ADRS ceiling (percent) each strategy must reach on `mvt` at a 25%
/// budget with seed 42. Observed values at the time of writing: random
/// 11.2%, anneal 19.2%, genetic 6.5%; the bound carries a ~2x margin
/// because it guards the *mechanism* (the heuristics must home in on the
/// front), not a benchmark score. The run is fully seed-deterministic, so
/// the margin only absorbs intentional strategy evolution.
const ADRS_BOUND_PERCENT: f64 = 40.0;

/// Exhaustive oracle sweep of `kernel` with the given unroll factors:
/// every `(latency, area)` point in evaluation order.
fn exhaustive_points(kernel: &str, factors: &[u32]) -> Vec<(f64, f64)> {
    let func = kernels::lower_kernel(kernel).unwrap();
    let mut space = kernels::design_space(&func);
    space.unroll_factors = factors.to_vec();
    let configs = space.enumerate();
    let reports = par::try_map("test/oracle", &configs, |_, c| {
        hlsim::evaluate(&func, c).map_err(QorError::from)
    })
    .unwrap();
    reports
        .iter()
        .map(|r| (r.top.latency as f64, dse::area(&r.top)))
        .collect()
}

#[test]
fn every_strategy_reaches_the_adrs_bound_at_quarter_budget() {
    let kernel = "mvt";
    let factors = [1u32, 2, 4];
    let all = exhaustive_points(kernel, &factors);
    assert_eq!(all.len(), 441, "mvt space size drifted; re-tune the bound");
    let budget = (all.len() as u64) / 4; // 25% of the enumerable space

    let func = Arc::new(kernels::lower_kernel(kernel).unwrap());
    let eval = OracleEval::new(func);
    for strategy in StrategyKind::all() {
        let opts = SearchOptions::new(kernel, strategy, budget)
            .with_seed(42)
            .with_batch(8)
            .with_unroll_factors(factors.to_vec());
        let mut run = SearchRun::for_kernel(opts).unwrap();
        let outcome = run.run(&eval).unwrap();
        assert!(
            outcome.spent <= budget,
            "{strategy}: spent {} over budget {budget}",
            outcome.spent
        );
        let adrs = dse::Adrs::compute(&all, &run.front_points());
        assert!(
            adrs.percent() <= ADRS_BOUND_PERCENT,
            "{strategy}: ADRS {:.2}% above the {ADRS_BOUND_PERCENT}% bound \
             at {budget}/{} evaluations",
            adrs.percent(),
            all.len()
        );
        println!(
            "{strategy}: {} evals, front {}, ADRS {:.2}%",
            outcome.spent,
            outcome.front.len(),
            adrs.percent()
        );
    }
}

#[test]
fn heuristics_beat_nothing_and_full_budget_is_exact() {
    // sanity anchor for the bound above: at 100% budget every strategy
    // must enumerate enough to reach ADRS 0 (random with a huge budget
    // sees the whole space; see duplicate-handling in the engine)
    let kernel = "fir";
    let factors = [1u32, 4];
    let all = exhaustive_points(kernel, &factors);
    let func = Arc::new(kernels::lower_kernel(kernel).unwrap());
    let eval = OracleEval::new(func);
    let opts = SearchOptions::new(kernel, StrategyKind::Random, 10_000)
        .with_seed(3)
        .with_batch(8)
        .with_unroll_factors(factors.to_vec());
    let mut run = SearchRun::for_kernel(opts).unwrap();
    run.run(&eval).unwrap();
    let adrs = dse::Adrs::compute(&all, &run.front_points());
    assert_eq!(adrs.percent(), 0.0, "full enumeration must be exact");
}

#[test]
fn identical_seeds_are_byte_identical_across_thread_counts() {
    let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(8).with_seed(11));
    let session = Arc::new(Session::with_capacity(model, 128));

    let snapshot_with_threads = |threads: usize| -> Vec<Vec<u8>> {
        par::set_threads(Some(threads));
        let mut snapshots = Vec::new();
        for strategy in StrategyKind::all() {
            let opts = SearchOptions::new("fir", strategy, 14)
                .with_seed(2024)
                .with_batch(4)
                .with_unroll_factors(vec![1, 2, 4]);
            let eval = SessionEval::new(session.clone(), "fir");
            let mut run = SearchRun::for_kernel(opts).unwrap();
            run.run(&eval).unwrap();
            snapshots.push(search::snapshot(&run));
        }
        snapshots
    };

    let single = snapshot_with_threads(1);
    let quad = snapshot_with_threads(4);
    par::set_threads(None);
    assert_eq!(
        single, quad,
        "seeded runs must be byte-identical for any worker count"
    );
}
