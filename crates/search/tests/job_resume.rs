//! Acceptance tests for `.qorjob` snapshots: mid-run resume equals the
//! uninterrupted run, every byte flip is a typed error, and version
//! mismatches are distinguishable from corruption.

use std::sync::Arc;

use qor_core::{HierarchicalModel, QorError, Session, TrainOptions};
use search::{SearchOptions, SearchRun, SessionEval, StrategyKind};

fn session() -> Arc<Session> {
    let opts = TrainOptions::quick().with_hidden(8).with_seed(13);
    Arc::new(Session::with_capacity(HierarchicalModel::new(&opts), 128))
}

fn opts(strategy: StrategyKind) -> SearchOptions {
    SearchOptions::new("bicg", strategy, 16)
        .with_seed(77)
        .with_batch(4)
        .with_unroll_factors(vec![1, 4])
}

#[test]
fn mid_run_snapshot_resumes_to_the_uninterrupted_front() {
    let session = session();
    for strategy in StrategyKind::all() {
        let eval = SessionEval::new(session.clone(), "bicg");

        let mut uninterrupted = SearchRun::for_kernel(opts(strategy)).unwrap();
        let expected = uninterrupted.run(&eval).unwrap();

        // interrupt after two steps, freeze, thaw, continue
        let mut partial = SearchRun::for_kernel(opts(strategy)).unwrap();
        partial.step(&eval).unwrap();
        partial.step(&eval).unwrap();
        let frozen = search::snapshot(&partial);
        assert!(
            partial.spent() > 0 && !partial.is_done(),
            "{strategy}: interruption point must be mid-run"
        );
        let mut resumed = search::restore(&frozen).unwrap();
        assert_eq!(resumed.spent(), partial.spent());
        assert_eq!(resumed.iterations(), partial.iterations());
        let continued = resumed.run(&eval).unwrap();

        assert_eq!(
            continued, expected,
            "{strategy}: resumed outcome diverged from the uninterrupted run"
        );
        assert_eq!(
            search::snapshot(&resumed),
            search::snapshot(&uninterrupted),
            "{strategy}: final snapshots must be byte-identical"
        );
    }
}

#[test]
fn snapshot_restore_snapshot_is_byte_stable() {
    let session = session();
    let eval = SessionEval::new(session, "bicg");
    let mut run = SearchRun::for_kernel(opts(StrategyKind::Genetic)).unwrap();
    run.run(&eval).unwrap();
    let first = search::snapshot(&run);
    let second = search::snapshot(&search::restore(&first).unwrap());
    assert_eq!(first, second);
}

#[test]
fn every_byte_flip_is_a_typed_error() {
    let session = session();
    let eval = SessionEval::new(session, "bicg");
    let mut run = SearchRun::for_kernel(opts(StrategyKind::Anneal)).unwrap();
    run.step(&eval).unwrap();
    let bytes = search::snapshot(&run);
    for offset in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0xff;
        match search::restore(&corrupt) {
            Err(QorError::Corrupt(_)) | Err(QorError::UnsupportedVersion(_)) => {}
            Ok(_) => panic!("flip at offset {offset} was accepted"),
            Err(other) => panic!("flip at offset {offset} gave {other:?}"),
        }
    }
    for len in 0..bytes.len() {
        assert!(
            matches!(
                search::restore(&bytes[..len]),
                Err(QorError::Corrupt(_) | QorError::UnsupportedVersion(_))
            ),
            "truncation to {len} bytes must be typed"
        );
    }
}

/// A populated fleet section — every field non-default so flips in the
/// fleet bytes can't be absorbed by zeroed padding.
fn assignment() -> search::FleetAssignment {
    search::FleetAssignment {
        workers: vec![
            search::FleetWorkerRecord {
                addr: "127.0.0.1:7001".to_string(),
                units_done: 9,
                failures: 1,
                healthy: true,
            },
            search::FleetWorkerRecord {
                addr: "127.0.0.1:7002".to_string(),
                units_done: 4,
                failures: 2,
                healthy: false,
            },
        ],
        units_dispatched: 13,
        units_retried: 3,
        units_reassigned: 2,
        workers_evicted: 1,
    }
}

#[test]
fn v2_fleet_snapshot_round_trips_and_rejects_every_flip_and_truncation() {
    let session = session();
    let eval = SessionEval::new(session, "bicg");
    let mut run = SearchRun::for_kernel(opts(StrategyKind::Genetic)).unwrap();
    run.step(&eval).unwrap();
    run.set_fleet(Some(assignment()));

    let bytes = search::snapshot(&run);
    let restored = search::restore(&bytes).unwrap();
    assert_eq!(restored.fleet(), Some(&assignment()), "fleet section lost");
    assert_eq!(search::snapshot(&restored), bytes, "v2 re-snapshot drifted");

    for offset in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0xff;
        match search::restore(&corrupt) {
            Err(QorError::Corrupt(_)) | Err(QorError::UnsupportedVersion(_)) => {}
            Ok(_) => panic!("flip at offset {offset} was accepted"),
            Err(other) => panic!("flip at offset {offset} gave {other:?}"),
        }
    }
    for len in 0..bytes.len() {
        assert!(
            matches!(
                search::restore(&bytes[..len]),
                Err(QorError::Corrupt(_) | QorError::UnsupportedVersion(_))
            ),
            "truncation to {len} bytes must be typed"
        );
    }
}

#[test]
fn v1_snapshots_still_restore_and_resume() {
    let session = session();
    let eval = SessionEval::new(session.clone(), "bicg");
    let mut uninterrupted = SearchRun::for_kernel(opts(StrategyKind::Genetic)).unwrap();
    let expected = uninterrupted.run(&eval).unwrap();

    let mut partial = SearchRun::for_kernel(opts(StrategyKind::Genetic)).unwrap();
    partial.step(&eval).unwrap();
    // a fleet coordinator's run downgrades cleanly: v1 simply has no
    // fleet section to carry
    partial.set_fleet(Some(assignment()));
    let v1 = search::snapshot_v1(&partial);
    let mut resumed = search::restore(&v1).unwrap();
    assert_eq!(resumed.spent(), partial.spent());
    assert_eq!(resumed.fleet(), None, "v1 cannot carry a fleet section");
    let continued = resumed.run(&eval).unwrap();
    assert_eq!(continued, expected, "v1 resume diverged");
}

#[test]
fn future_versions_are_unsupported_not_corrupt() {
    let session = session();
    let eval = SessionEval::new(session, "bicg");
    let mut run = SearchRun::for_kernel(opts(StrategyKind::Random)).unwrap();
    run.step(&eval).unwrap();
    let bytes = search::snapshot(&run);

    // patch the version field and re-seal so only the version differs
    let mut patched = bytes[..bytes.len() - 8].to_vec();
    patched[8..12].copy_from_slice(&(search::JOB_FORMAT_VERSION + 1).to_le_bytes());
    let sum = qor_core::fnv1a(&patched);
    patched.extend_from_slice(&sum.to_le_bytes());
    match search::restore(&patched) {
        Err(QorError::UnsupportedVersion(v)) => {
            assert_eq!(v, search::JOB_FORMAT_VERSION + 1)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn file_round_trip_and_missing_files_are_typed() {
    let session = session();
    let eval = SessionEval::new(session, "bicg");
    let mut run = SearchRun::for_kernel(opts(StrategyKind::Genetic)).unwrap();
    run.step(&eval).unwrap();

    let dir = std::env::temp_dir().join(format!("qorjob-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.qorjob");
    search::save_job_file(&run, &path).unwrap();
    let restored = search::load_job_file(&path).unwrap();
    assert_eq!(search::snapshot(&restored), search::snapshot(&run));

    let missing = dir.join("nope.qorjob");
    assert!(matches!(
        search::load_job_file(&missing),
        Err(QorError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}
