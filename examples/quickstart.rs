//! Quickstart: parse an HLS-C kernel, apply pragmas, inspect the graph, and
//! get ground-truth QoR from the simulated tool flow.
//!
//! Run with: `cargo run --release --example quickstart`

use hier_hls_qor::prelude::*;
use pragma::{LoopId, Unroll};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An HLS-C kernel (the front-end accepts the usual Polybench style).
    let source = r#"
void dot(float a[64], float b[64], float out[1]) {
    float acc = 0.0;
    for (int i = 0; i < 64; i++) {
        acc += a[i] * b[i];
    }
    out[0] = acc;
}
"#;
    let program = frontc::parse(source)?;
    let module = hir::lower(&program)?;
    let func = module.function("dot").expect("kernel present");
    println!(
        "lowered `dot`: {} ops, {} loop(s)",
        func.ops.len(),
        func.loops().len()
    );

    // 2. A pragma configuration: pipeline the loop, unroll by 4, and
    //    partition the arrays to feed the unrolled lanes.
    let loop_i = LoopId::from_path(&[0]);
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(loop_i.clone(), true);
    cfg.set_unroll(loop_i.clone(), Unroll::Factor(4));
    for array in ["a", "b"] {
        cfg.set_partition(
            array,
            1,
            pragma::ArrayPartition {
                kind: pragma::PartitionKind::Cyclic,
                factor: 4,
            },
        );
    }

    // 3. The pragma-aware CDFG: unrolling replicates nodes, partitioning
    //    splits memory ports.
    let plain_graph = GraphBuilder::new(func, &PragmaConfig::default()).build();
    let pragma_graph = GraphBuilder::new(func, &cfg).build();
    println!(
        "graph: {} nodes plain vs {} nodes with pragmas ({} memory ports for `a`)",
        plain_graph.num_nodes(),
        pragma_graph.num_nodes(),
        pragma_graph.ports_of("a").len(),
    );

    // 4. Ground truth from the simulated C-to-bitstream flow.
    let baseline = hlsim::evaluate(func, &PragmaConfig::default())?;
    let optimized = hlsim::evaluate(func, &cfg)?;
    println!(
        "baseline : {:>8} cycles, {:>6} LUT, {:>6} FF, {:>3} DSP",
        baseline.top.latency, baseline.top.lut, baseline.top.ff, baseline.top.dsp
    );
    println!(
        "optimized: {:>8} cycles, {:>6} LUT, {:>6} FF, {:>3} DSP",
        optimized.top.latency, optimized.top.lut, optimized.top.ff, optimized.top.dsp
    );
    println!(
        "speedup: {:.1}x for {:.1}x the LUTs",
        baseline.top.latency as f64 / optimized.top.latency as f64,
        optimized.top.lut as f64 / baseline.top.lut as f64,
    );

    // 5. The analytic initiation interval used as a loop-level feature.
    println!(
        "analytic II of the pipelined loop: {}",
        hlsim::analytic_ii(func, &cfg, &loop_i)
    );
    Ok(())
}
