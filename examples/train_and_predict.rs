//! Trains the hierarchical model on the benchmark suite and uses it to
//! predict post-route QoR for configurations it has never seen — the
//! paper's core source-to-post-route flow.
//!
//! Run with: `cargo run --release --example train_and_predict`
//! (add `-- --paper` via env QOR_PAPER=1 for full scale)

use hier_hls_qor::prelude::*;
use pragma::{LoopId, Unroll};
use qor_core::TrainOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = if std::env::var("QOR_PAPER").is_ok() {
        TrainOptions::paper()
    } else {
        TrainOptions::quick()
    };

    println!("training hierarchical model (GNN_p, GNN_np, GNN_g)...");
    let (model, stats) = HierarchicalModel::train_on_kernels(&opts)?;
    println!(
        "dataset sizes: {} pipelined / {} non-pipelined inner loops, {} designs",
        stats.dataset_sizes.0, stats.dataset_sizes.1, stats.dataset_sizes.2
    );
    println!(
        "test MAPE — GNN_p latency {:.2}%, GNN_np latency {:.2}%, GNN_g latency {:.2}%",
        stats.pipelined.latency_mape, stats.non_pipelined.latency_mape, stats.global.latency_mape
    );
    println!(
        "GNN_g resources — LUT {:.2}%, FF {:.2}%, DSP {:.2}%",
        stats.global.lut_mape, stats.global.ff_mape, stats.global.dsp_mape
    );

    // Predict an unseen kernel (bicg is in the DSE hold-out set) under a
    // hand-written configuration and compare against the oracle.
    let func = kernels::lower_kernel("bicg")?;
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[1, 0]), true);
    cfg.set_unroll(LoopId::from_path(&[1, 0]), Unroll::Factor(2));

    let predicted = model.predict(&func, &cfg);
    let truth = hlsim::evaluate(&func, &cfg)?.top;
    println!("\nbicg (unseen kernel), pipelined+unrolled inner loop:");
    println!(
        "  predicted: {:>8} cycles, {:>6} LUT, {:>6} FF, {:>3} DSP",
        predicted.latency, predicted.lut, predicted.ff, predicted.dsp
    );
    println!(
        "  oracle   : {:>8} cycles, {:>6} LUT, {:>6} FF, {:>3} DSP",
        truth.latency, truth.lut, truth.ff, truth.dsp
    );
    println!(
        "  latency error: {:.1}%",
        100.0 * (predicted.latency as f64 - truth.latency as f64).abs() / truth.latency as f64
    );
    Ok(())
}
