//! Sweeps a kernel's pragma design space with the simulated tool flow and
//! prints the latency/area trade-off curve — the workload the paper's
//! intro motivates (choosing pragmas without waiting days for Vivado).
//!
//! Run with: `cargo run --release --example pragma_sweep [kernel]`

use hier_hls_qor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = std::env::args().nth(1).unwrap_or_else(|| "gemm".into());
    let func = kernels::lower_kernel(&kernel)?;
    let space = kernels::design_space(&func);
    let configs = space.enumerate();
    println!("kernel {kernel}: {} pragma configurations", configs.len());

    let mut points = Vec::new();
    let mut tool_secs = 0.0;
    for cfg in &configs {
        let report = hlsim::evaluate(&func, cfg)?;
        tool_secs += hlsim::tool_runtime_secs(&report.top);
        points.push((report.top, cfg));
    }
    println!(
        "exhaustive sweep would cost a real tool flow ~{:.1} days",
        tool_secs / 86_400.0
    );

    // Pareto frontier over (latency, area)
    let objs: Vec<(f64, f64)> = points
        .iter()
        .map(|(q, _)| (q.latency as f64, dse::area(q)))
        .collect();
    let front = ParetoFront::from_points(&objs);
    println!(
        "\nPareto-optimal designs ({} of {}):",
        front.len(),
        configs.len()
    );
    let mut rows: Vec<(u64, u64, u64, u64, String)> = front
        .indices()
        .iter()
        .map(|&i| {
            let (q, cfg) = &points[i];
            let pragmas: Vec<String> = cfg
                .loops()
                .filter(|(_, p)| p.pipeline || p.flatten || p.unroll != pragma::Unroll::Off)
                .map(|(id, p)| {
                    let mut tags = Vec::new();
                    if p.pipeline {
                        tags.push("pipeline".to_string());
                    }
                    if p.flatten {
                        tags.push("flatten".to_string());
                    }
                    match p.unroll {
                        pragma::Unroll::Off => {}
                        pragma::Unroll::Factor(f) => tags.push(format!("unroll={f}")),
                        pragma::Unroll::Full => tags.push("unroll=full".to_string()),
                    }
                    format!("{id}:{}", tags.join("+"))
                })
                .collect();
            (q.latency, q.lut, q.ff, q.dsp, pragmas.join(" "))
        })
        .collect();
    rows.sort();
    for (lat, lut, ff, dsp, pragmas) in rows {
        println!("  {lat:>9} cyc | {lut:>6} LUT {ff:>6} FF {dsp:>4} DSP | {pragmas}");
    }
    Ok(())
}
