//! Model-guided design-space exploration of `bicg` (one row of the paper's
//! Table V): train on the 12 training kernels, sweep bicg's pragma space
//! with the GNN predictor, and compare the predicted Pareto set against
//! exhaustive ground truth via ADRS.
//!
//! Run with: `cargo run --release --example dse_bicg`

use hier_hls_qor::prelude::*;
use qor_core::TrainOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training hierarchical model on the 12 training kernels...");
    let (model, _stats) = HierarchicalModel::train_on_kernels(&TrainOptions::quick())?;

    let func = kernels::lower_kernel("bicg")?;
    let space = kernels::design_space(&func);
    let configs = space.enumerate_capped(300);
    println!("exploring {} bicg configurations...", configs.len());

    let outcome = dse::explore(
        "bicg",
        &func,
        &configs,
        |f, c| model.predict(f, c),
        0.0, // our method needs no HLS in the loop
    )?;

    println!("\nDSE outcome for bicg:");
    println!("  configurations     : {}", outcome.n_configs);
    println!(
        "  simulated Vivado   : {:.1} days (exhaustive)",
        outcome.vivado_days()
    );
    println!(
        "  model-guided DSE   : {:.2} min",
        outcome.explore_minutes()
    );
    println!("  ADRS               : {:.2}%", outcome.adrs_percent());

    // show the predicted Pareto designs at their true QoR
    let true_pts: Vec<(f64, f64)> = outcome
        .points
        .iter()
        .map(|p| (p.true_qor.latency as f64, dse::area(&p.true_qor)))
        .collect();
    let exact = ParetoFront::from_points(&true_pts);
    println!("  exact Pareto size  : {}", exact.len());
    println!("\nexact Pareto frontier (latency cycles, area):");
    let mut pts: Vec<_> = exact.points().to_vec();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (lat, area) in pts.iter().take(10) {
        println!("  {:>10.0} cycles  area {:.4}", lat, area);
    }
    Ok(())
}
