#!/bin/sh
# Local CI: everything a pull request must pass, in dependency order.
# Usage: ./ci.sh
set -eu

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
