#!/bin/sh
# Local CI: everything a pull request must pass, in dependency order.
# Usage: ./ci.sh
set -eu

echo "==> cargo build --release"
cargo build --workspace --release

# The determinism contract says results are byte-identical for any worker
# count, so the whole suite must pass on both the legacy sequential path
# (QOR_THREADS=1) and a genuinely parallel one (QOR_THREADS=4).
echo "==> cargo test (QOR_THREADS=1)"
QOR_THREADS=1 cargo test -q --workspace

echo "==> cargo test (QOR_THREADS=4)"
QOR_THREADS=4 cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Checkpoint gate: a saved model must reload bit-exactly (differential
# round-trip) and every corrupted byte/truncation must fail typed.
echo "==> checkpoint round-trip gate"
cargo test -q --release -p serve --test checkpoint_roundtrip --test corrupt

# Serving smoke gate: checkpoint round-trip through the live HTTP path.
# This is the in-tree "curl" substitute: it drives the /v1 surface end to
# end — both batching-queue flush paths (wait-deadline and size-triggered,
# checked against /debug/vars counters), single-flight dedup, a registry
# hot-reload cycle (generation bump + new weights serving), deprecated
# legacy aliases with their successor links, the typed error envelope, and
# the observability surface (Prometheus histogram buckets, per-model and
# batcher series, trace-ID echo, /debug/requests flight dumps).
echo "==> qor-serve --self-test"
./target/release/qor-serve --self-test

# Serving determinism gates: smoke outputs must be byte-identical across
# thread counts (timing fields are nulled; the workload_fnv checksum
# covers predicted QoR values in request order). qor-bench additionally
# proves direct and batched dispatch produce bit-identical predictions.
echo "==> serve_latency --smoke determinism"
QOR_THREADS=1 ./target/release/serve_latency --smoke --out /tmp/qor_smoke1.json >/dev/null
QOR_THREADS=4 ./target/release/serve_latency --smoke --out /tmp/qor_smoke4.json >/dev/null
cmp /tmp/qor_smoke1.json /tmp/qor_smoke4.json
rm -f /tmp/qor_smoke1.json /tmp/qor_smoke4.json

echo "==> qor-bench --smoke determinism"
QOR_THREADS=1 ./target/release/qor-bench --smoke --out /tmp/qor_bench1.json >/dev/null
QOR_THREADS=4 ./target/release/qor-bench --smoke --out /tmp/qor_bench4.json >/dev/null
cmp /tmp/qor_bench1.json /tmp/qor_bench4.json
rm -f /tmp/qor_bench1.json /tmp/qor_bench4.json

# Incremental-engine gate: the sweep prepares every candidate through the
# query database, the plain LRU, and from scratch, and aborts on any
# digest divergence — so a clean exit IS the cold-vs-incremental
# byte-identity proof. Run at both worker counts and require the appended
# trajectories (timings nulled in smoke) to be byte-identical too. The
# engine's own red-green/version-cache unit tests and the differential
# suite (crates/core/tests/incr_differential.rs, walk suite in
# crates/bench/tests) already ran above under both QOR_THREADS values.
echo "==> qor-bench incr_sweep --smoke determinism"
QOR_THREADS=1 ./target/release/qor-bench incr_sweep --smoke --out /tmp/qor_incr1.json >/dev/null
QOR_THREADS=4 ./target/release/qor-bench incr_sweep --smoke --out /tmp/qor_incr4.json >/dev/null
cmp /tmp/qor_incr1.json /tmp/qor_incr4.json
rm -f /tmp/qor_incr1.json /tmp/qor_incr4.json

# Crash-free fuzz gate: ≥2000 seeded programs (legal from the grammar
# generator + corrupted from the mutational corruptor) through the full
# frontc → hir → cdfg → features → predict pipeline; qor-fuzz exits
# nonzero if ANY input panics instead of producing a typed error or a
# clean prediction. The smoke runs additionally prove the verdict stream
# (and its FNV digest) is byte-identical at QOR_THREADS=1 and 4.
echo "==> qor-fuzz --smoke determinism"
QOR_THREADS=1 ./target/release/qor-fuzz --smoke --out /tmp/qor_fuzz1.json
QOR_THREADS=4 ./target/release/qor-fuzz --smoke --out /tmp/qor_fuzz4.json
cmp /tmp/qor_fuzz1.json /tmp/qor_fuzz4.json
rm -f /tmp/qor_fuzz1.json /tmp/qor_fuzz4.json

echo "==> qor-fuzz crash-free gate (2100 programs)"
./target/release/qor-fuzz --out /dev/null

# Long-haul mode (off by default; set QOR_FUZZ_LONG=1 in a nightly lane):
# 9000 programs across a shifted seed window to probe beyond the PR gate.
if [ "${QOR_FUZZ_LONG:-0}" = "1" ]; then
    echo "==> qor-fuzz --long (QOR_FUZZ_LONG=1)"
    ./target/release/qor-fuzz --long --seed 100000 --out /dev/null
fi

# Fleet gate: a coordinator and two in-process HTTP workers run a fleet
# search job end to end — front byte-identical to the single-process run,
# worker-kill eviction, typed 503 on an empty roster — and the digest
# file (ledger FNV + front + spent) must be byte-identical across thread
# counts. The multi-process variant (real worker processes, kill + resume
# from .qorjob) runs in the test suite above (serve/tests/fleet_multiprocess.rs).
echo "==> qor-serve --fleet-self-test determinism"
QOR_THREADS=1 ./target/release/qor-serve --fleet-self-test --out /tmp/qor_fleet1.json
QOR_THREADS=4 ./target/release/qor-serve --fleet-self-test --out /tmp/qor_fleet4.json
cmp /tmp/qor_fleet1.json /tmp/qor_fleet4.json
rm -f /tmp/qor_fleet1.json /tmp/qor_fleet4.json

# Fleet scaling determinism: the smoke run spins the full 1/2/4-worker
# HTTP ladder and aborts on any ledger-digest divergence; the appended
# trajectory (timings nulled) must be byte-identical across thread counts.
echo "==> qor-bench fleet_scaling --smoke determinism"
QOR_THREADS=1 ./target/release/qor-bench fleet_scaling --smoke --out /tmp/qor_fleetb1.json >/dev/null
QOR_THREADS=4 ./target/release/qor-bench fleet_scaling --smoke --out /tmp/qor_fleetb4.json >/dev/null
cmp /tmp/qor_fleetb1.json /tmp/qor_fleetb4.json
rm -f /tmp/qor_fleetb1.json /tmp/qor_fleetb4.json

# Search smoke gate: budget accounting, snapshot determinism, mid-run
# resume, and corruption typing — on both executor paths, because the
# engine fans evaluation batches through `par`.
echo "==> qor-search --self-test (QOR_THREADS=1)"
QOR_THREADS=1 ./target/release/qor-search --self-test

echo "==> qor-search --self-test (QOR_THREADS=4)"
QOR_THREADS=4 ./target/release/qor-search --self-test

# Library crates expose typed errors (qor_core::QorError, kernels::KernelError);
# Box<dyn Error> is only tolerated inside comments (doctest scaffolding) and
# in binary main() signatures, which live outside these trees.
echo "==> typed-error gate"
violations=$(grep -rn 'Box<dyn std::error::Error>' \
    crates/core/src crates/dse/src crates/gnn/src \
    crates/kernels/src crates/tensor/src \
    | grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' || true)
if [ -n "$violations" ]; then
    echo "public APIs must use typed errors, not Box<dyn Error>:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "CI green."
